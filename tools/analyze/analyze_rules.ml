(* ei_race rules engine: typed concurrency-discipline analysis.

   Loads the .cmt binary annotations dune produces for every library
   module and walks the typedtree — where paths are resolved and
   mutability is explicit — enforcing the concurrency discipline the
   untyped ei_lint cannot see.  Four rule families:

   - [unguarded-state] / [unguarded-access] (shared-state inventory):
     every module-level and record-level mutable datum is classified
     (Atomic.t, Mutex, Condition, ref, array, hash table, mutable
     field); a plain mutable datum must carry [@ei.guarded_by
     "<lock-expr>"] (a lock protects it) or [@ei.single_domain] (it
     never crosses domains), field-level or on the whole type
     ([@@...]); accesses to unannotated mutable data inside a
     [Domain.spawn] closure are flagged at the use site.  The full
     classification is exported as a machine-readable inventory.

   - [lock-leak] / [lock-divergent] / [lock-raise] / [lock-loop]
     (release discipline): an intra-function abstract walk tracks the
     set of write locks held — acquired through [upgrade_or_restart],
     a successful [try_upgrade] condition, or [Mutex.lock] — and
     requires every exit to release them: normal exits must hold
     nothing ([lock-leak], anchored at the acquire site), branches of
     a conditional must agree ([lock-divergent]), a syntactic raise
     must not fire while a lock is held unless an enclosing [try] or
     [critical] releases it on the exception edge ([lock-raise]), and
     a loop body must preserve the held set ([lock-loop]).

   - [yield-point]: a [while] loop or self-recursive function whose
     body (transitively through same-module calls) touches
     synchronization (Atomic / Mutex / Condition / Domain operations,
     or the Restart / Fault.Injected retry protocols) must contain a
     yield site ([Fault.point] / [Fault.fire], [Condition.wait],
     [Unix.sleepf], [Domain.join], or a blocking queue operation) so
     the ei_sim cooperative scheduler can interleave it.
     [Domain.cpu_relax] is not a yield site: the simulator cannot
     preempt there.

   - [atomic-rmw]: [Atomic.set a (f (Atomic.get a))] outside a
     lock-held region loses concurrent updates between the load and
     the store; use [fetch_and_add] / [compare_and_set].  (Inside a
     critical section the pattern is a plain unshared update — the
     version-lock release in Btree_olc is the baselined example.)

   The walk is deliberately unsound-but-quiet: only syntactic raises
   count as exception edges (a call is assumed not to raise), lock
   identity is the rendered source expression, and lambdas other than
   [critical]'s body run in a fresh context.  The point is a cheap
   gate that catches the discipline violations we actually write, with
   a baseline file for the deliberate exceptions. *)

open Typedtree

module S = Set.Make (String)

type finding = { diag : Report.diag; slug : string }

type inv_entry = {
  inv_file : string;
  inv_line : int;
  inv_name : string;
  inv_kind : string;
  inv_guard : string option; (* None = unannotated *)
}

type result = { findings : finding list; inventory : inv_entry list }

(* ------------------------------------------------------------------ *)
(* Paths and rendering.                                                *)

let rec path_comps = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_comps p @ [ s ]
  | Path.Papply (p, q) -> path_comps p @ path_comps q
  | Path.Pextra_ty (p, _) -> path_comps p

(* "Ei_fault__Fault" -> "Fault": strip the dune wrapping prefix so
   module matching works on source names. *)
let module_tail name =
  let n = String.length name in
  let rec find i last =
    if i + 1 >= n then last
    else if Char.equal name.[i] '_' && Char.equal name.[i + 1] '_' then
      find (i + 2) (i + 2)
    else find (i + 1) last
  in
  let j = find 0 0 in
  if j = 0 || j >= n then name else String.sub name j (n - j)

(* Path as [module; ...; value] with Stdlib stripped and wrapping
   prefixes removed. *)
let norm_path p =
  let comps = List.map module_tail (path_comps p) in
  match comps with "Stdlib" :: rest -> rest | comps -> comps

let path_last p = match List.rev (path_comps p) with x :: _ -> x | [] -> ""

(* Render a lock / atomic expression to a stable identity string. *)
let rec render e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> path_last p
  | Texp_field (e1, _, lbl) -> render e1 ^ "." ^ lbl.Types.lbl_name
  | Texp_apply (f, args) ->
    render f ^ "("
    ^ String.concat ","
        (List.map (function _, Some a -> render a | _, None -> "_") args)
    ^ ")"
  | _ ->
    let p = e.exp_loc.Location.loc_start in
    Printf.sprintf "<expr@%d:%d>" p.Lexing.pos_lnum
      (p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ------------------------------------------------------------------ *)
(* Annotations.                                                        *)

type guard = Guarded_by of string | Single_domain

let string_payload = function
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let find_guard (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "ei.guarded_by" -> (
        match string_payload a.attr_payload with
        | Some s -> Some (Guarded_by s)
        | None -> Some (Guarded_by "<malformed>"))
      | "ei.single_domain" -> Some Single_domain
      | _ -> None)
    attrs

let guard_str = function
  | Guarded_by s -> "guarded_by " ^ s
  | Single_domain -> "single_domain"

(* ------------------------------------------------------------------ *)
(* Annotation registry: label-declaration location -> guard.           *)
(* Built over every scanned cmt first, so a field access in one        *)
(* module sees annotations on a type declared in another.              *)

type loc_key = string * int * int

let key_of_loc (loc : Location.t) : loc_key =
  let p = loc.Location.loc_start in
  ( Filename.basename p.Lexing.pos_fname,
    p.Lexing.pos_lnum,
    p.Lexing.pos_cnum - p.Lexing.pos_bol )

type registry = (loc_key, guard) Hashtbl.t

let label_guard ~type_guard (ld : label_declaration) =
  match find_guard ld.ld_attributes with
  | Some g -> Some g
  | None -> (
    match find_guard ld.ld_type.ctyp_attributes with
    | Some g -> Some g
    | None -> type_guard)

let register_labels (reg : registry) ~type_guard lds =
  List.iter
    (fun ld ->
      match label_guard ~type_guard ld with
      | Some g -> Hashtbl.replace reg (key_of_loc ld.ld_loc) g
      | None -> ())
    lds

let registry_of_structure (reg : registry) (str : structure) =
  let it =
    {
      Tast_iterator.default_iterator with
      type_declaration =
        (fun _ (td : type_declaration) ->
          let type_guard = find_guard td.typ_attributes in
          match td.typ_kind with
          | Ttype_record lds -> register_labels reg ~type_guard lds
          | Ttype_variant cds ->
            List.iter
              (fun cd ->
                match cd.cd_args with
                | Cstr_record lds -> register_labels reg ~type_guard lds
                | Cstr_tuple _ -> ())
              cds
          | _ -> ());
    }
  in
  it.structure it str

let lookup_label (reg : registry) (lbl : Types.label_description) =
  match find_guard lbl.Types.lbl_attributes with
  | Some g -> Some g
  | None -> Hashtbl.find_opt reg (key_of_loc lbl.Types.lbl_loc)

(* ------------------------------------------------------------------ *)
(* Per-module analysis context.                                        *)

type ctx = {
  file : string; (* display path for diagnostics *)
  reg : registry;
  mutable findings : finding list;
  mutable inventory : inv_entry list;
  mutable slug : string; (* enclosing top-level binding *)
  mutable no_rule2 : bool; (* inside a lock-primitive definition *)
  (* module-level mutable bindings without an annotation, keyed by
     declaration location so shadowing cannot confuse the lookup *)
  unguarded_idents : (loc_key, string) Hashtbl.t;
  (* every value binding in the module, for the yield-point closure *)
  defs : (string, expression) Hashtbl.t;
}

let emit ctx ~loc ~rule msg =
  let diag = Report.of_location ~rule ~msg loc ~file:ctx.file in
  ctx.findings <- { diag; slug = ctx.slug } :: ctx.findings

let add_inv ctx ~loc ~name ~kind ~guard =
  let p = loc.Location.loc_start in
  ctx.inventory <-
    {
      inv_file = ctx.file;
      inv_line = p.Lexing.pos_lnum;
      inv_name = name;
      inv_kind = kind;
      inv_guard = guard;
    }
    :: ctx.inventory

(* ------------------------------------------------------------------ *)
(* Rule 1: shared-state inventory.                                     *)

let annotation_advice =
  "annotate [@ei.guarded_by \"<lock>\"] or [@ei.single_domain], or make \
   it atomic"

(* Classify a module-level binding's right-hand side. *)
let classify_binding e =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
    match norm_path p with
    | [ "Atomic"; "make" ] -> Some ("atomic", false)
    | [ "Mutex"; "create" ] -> Some ("mutex", false)
    | [ "Condition"; "create" ] -> Some ("condition", false)
    | [ "ref" ] -> Some ("ref", true)
    | [ "Array"; ("make" | "init" | "create" | "make_matrix") ] ->
      Some ("array", true)
    | [ ("Hashtbl" | "Strtbl"); "create" ] -> Some ("table", true)
    | _ -> None)
  | Texp_array _ -> Some ("array", true)
  | _ -> None

(* Is this core_type an array whose elements are not atomic?  Record
   label types arrive wrapped in [Ttyp_poly]. *)
let rec plain_array_type (ct : core_type) =
  match ct.ctyp_desc with
  | Ttyp_constr (p, _, [ elt ]) when String.equal (path_last p) "array" -> (
    match elt.ctyp_desc with
    | Ttyp_constr (ep, _, _) when String.equal (path_last ep) "t" -> (
      match List.rev (norm_path ep) with
      | _ :: "Atomic" :: _ -> false
      | _ -> true)
    | _ -> true)
  | Ttyp_alias (ct, _) | Ttyp_poly (_, ct) -> plain_array_type ct
  | _ -> false

let check_type_declaration ctx (td : type_declaration) =
  let type_guard = find_guard td.typ_attributes in
  let tname = td.typ_name.txt in
  let check_label (ld : label_declaration) =
    let guard = label_guard ~type_guard ld in
    let name = tname ^ "." ^ ld.ld_name.txt in
    let mutable_field =
      match ld.ld_mutable with Asttypes.Mutable -> true | _ -> false
    in
    let array_field = plain_array_type ld.ld_type in
    if mutable_field || array_field then begin
      let kind = if mutable_field then "mutable-field" else "array-field" in
      add_inv ctx ~loc:ld.ld_loc ~name ~kind
        ~guard:(Option.map guard_str guard);
      if Option.is_none guard then
        emit ctx ~loc:ld.ld_loc ~rule:"unguarded-state"
          (Printf.sprintf "%s field %s has no concurrency annotation; %s"
             (if mutable_field then "mutable" else "array")
             name annotation_advice)
    end
  in
  match td.typ_kind with
  | Ttype_record lds -> List.iter check_label lds
  | Ttype_variant cds ->
    List.iter
      (fun cd ->
        match cd.cd_args with
        | Cstr_record lds -> List.iter check_label lds
        | Cstr_tuple _ -> ())
      cds
  | _ -> ()

(* The bound name of a simple [let x = ...] binding.  A type-constrained
   [let x : t = ...] arrives as [Tpat_alias] (the typechecker wraps the
   constraint), so matching [Tpat_var] alone misses it. *)
let pat_var_name (p : pattern) =
  match p.pat_desc with
  | Tpat_var (_, name) | Tpat_alias (_, _, name) -> Some name.txt
  | _ -> None

let check_module_binding ctx (vb : value_binding) =
  match pat_var_name vb.vb_pat with
  | Some name -> (
    match classify_binding vb.vb_expr with
    | None -> ()
    | Some (kind, needs_guard) ->
      let guard =
        match find_guard vb.vb_attributes with
        | Some g -> Some g
        | None -> find_guard vb.vb_expr.exp_attributes
      in
      add_inv ctx ~loc:vb.vb_pat.pat_loc ~name ~kind
        ~guard:(Option.map guard_str guard);
      if needs_guard then
        if Option.is_none guard then begin
          Hashtbl.replace ctx.unguarded_idents
            (key_of_loc vb.vb_pat.pat_loc)
            name;
          emit ctx ~loc:vb.vb_pat.pat_loc ~rule:"unguarded-state"
            (Printf.sprintf
               "module-level %s %s has no concurrency annotation; %s" kind
               name annotation_advice)
        end)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Rules 2 and 4: the lock-discipline walk.                            *)

type wst = {
  held : (string * Location.t) list; (* lock -> acquire site *)
  prot : S.t; (* released on the exception edge by an enclosing handler *)
  diverged : bool;
  in_spawn : bool;
}

let held_names st = S.of_list (List.map fst st.held)

let acquire st lock loc =
  if List.mem_assoc lock st.held then st
  else { st with held = (lock, loc) :: st.held }

let release st lock =
  (* Releasing a lock this function never acquired is assumed to be the
     caller's lock (helper functions): ignored, not a finding. *)
  { st with held = List.remove_assoc lock st.held }

let raising_fn p =
  match List.rev (norm_path p) with
  | ("raise" | "raise_notrace" | "failwith" | "invalid_arg") :: _ -> true
  | ("impossible" | "broken" | "brokenf") :: "Invariant" :: _ -> true
  | _ -> false

(* The version-lock primitives implement the discipline rule 2 checks;
   walking their bodies against it would flag the implementation. *)
let lock_primitives =
  S.of_list
    [
      "read_lock"; "try_upgrade"; "upgrade_or_restart"; "write_unlock";
      "write_abort"; "critical"; "validate"; "check";
    ]

let in_olc ctx = String.equal (Filename.basename ctx.file) "btree_olc.ml"

let nolabel_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

(* Does [e] syntactically contain [Atomic.get] of [target]? *)
let contains_get target e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            match (norm_path p, nolabel_args args) with
            | [ "Atomic"; "get" ], [ a ] when String.equal (render a) target
              ->
              found := true
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
    }
  in
  it.expr it e;
  !found

(* Immediate sub-expressions of [e], via a one-level iterator. *)
let subexprs e =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ x -> acc := x :: !acc);
    }
  in
  Tast_iterator.default_iterator.expr it e;
  List.rev !acc

let rec walk ctx st e =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    (match p with
    | Path.Pident id when st.in_spawn -> (
      (* A read or write of unannotated module-level mutable state from
         inside a spawned closure. *)
      let name = Ident.name id in
      let is_unguarded =
        Hashtbl.fold
          (fun _ n acc -> acc || String.equal n name)
          ctx.unguarded_idents false
      in
      if is_unguarded then
        emit ctx ~loc:e.exp_loc ~rule:"unguarded-access"
          (Printf.sprintf
             "access to unannotated module-level mutable %s inside a \
              Domain.spawn closure"
             name))
    | _ -> ());
    st
  | Texp_constant _ | Texp_unreachable -> st
  | Texp_let (_, vbs, body) ->
    let st = List.fold_left (fun st vb -> walk ctx st vb.vb_expr) st vbs in
    walk ctx st body
  | Texp_function { cases; _ } ->
    (* A lambda body inherits the held set — helpers defined inside a
       locked region (or callbacks invoked there) run with the lock
       held — but locks it acquires itself must not outlive it. *)
    List.iter
      (fun c ->
        let out = walk ctx st c.c_rhs in
        if (not ctx.no_rule2) && not out.diverged then
          List.iter
            (fun (l, loc) ->
              if not (List.mem_assoc l st.held) then
                emit ctx ~loc ~rule:"lock-leak"
                  (Printf.sprintf
                     "write lock %s acquired here is still held at \
                      function exit on some path"
                     l))
            out.held)
      cases;
    st
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
    walk_apply ctx st e p args
  | Texp_apply (f, args) ->
    let st = walk ctx st f in
    List.fold_left
      (fun st (_, a) ->
        match a with Some a -> walk ctx st a | None -> st)
      st args
  | Texp_match (scrut, cases, _) ->
    let st = walk ctx st scrut in
    join ctx st e.exp_loc (List.map (fun c -> walk_case ctx st c) cases)
  | Texp_try (body, handlers) ->
    (* The handler catches whatever the body raises, so locks held at
       entry are protected on the body's exception edges. *)
    let body_st =
      walk ctx { st with prot = S.union st.prot (held_names st) } body
    in
    let body_st = { body_st with prot = st.prot } in
    let handler_sts = List.map (fun c -> walk_case ctx st c) handlers in
    join ctx st e.exp_loc (body_st :: handler_sts)
  | Texp_ifthenelse (cond, then_, else_opt) ->
    let try_upgrade_lock c =
      match c.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        match (path_last p, nolabel_args args) with
        | "try_upgrade", a :: _ -> Some (render a, c.exp_loc, false)
        | "not", [ inner ] -> (
          match inner.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (q, _, _); _ }, iargs) -> (
            match (path_last q, nolabel_args iargs) with
            | "try_upgrade", a :: _ -> Some (render a, c.exp_loc, true)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      | _ -> None
    in
    let st_cond = walk ctx st cond in
    let then_entry, else_entry =
      match try_upgrade_lock cond with
      | Some (lock, loc, negated) ->
        let locked = acquire st_cond lock loc in
        if negated then (st_cond, locked) else (locked, st_cond)
      | None -> (st_cond, st_cond)
    in
    let then_st = walk ctx then_entry then_ in
    let else_st =
      match else_opt with
      | Some e2 -> walk ctx else_entry e2
      | None -> else_entry
    in
    join ctx st_cond e.exp_loc [ then_st; else_st ]
  | Texp_sequence (a, b) ->
    let st = walk ctx st a in
    walk ctx st b
  | Texp_while (cond, body) ->
    let st = walk ctx st cond in
    let body_st = walk ctx st body in
    if
      (not ctx.no_rule2)
      && (not body_st.diverged)
      && not (S.equal (held_names st) (held_names body_st))
    then
      emit ctx ~loc:e.exp_loc ~rule:"lock-loop"
        "loop body does not preserve the set of held locks across \
         iterations";
    st
  | Texp_for (_, _, lo, hi, _, body) ->
    let st = walk ctx st lo in
    let st = walk ctx st hi in
    let body_st = walk ctx st body in
    if
      (not ctx.no_rule2)
      && (not body_st.diverged)
      && not (S.equal (held_names st) (held_names body_st))
    then
      emit ctx ~loc:e.exp_loc ~rule:"lock-loop"
        "loop body does not preserve the set of held locks across \
         iterations";
    st
  | Texp_setfield (e1, _, lbl, e2) ->
    check_field_access ctx st e.exp_loc lbl;
    let st = walk ctx st e1 in
    walk ctx st e2
  | Texp_field (e1, _, lbl) ->
    let mutable_lbl =
      match lbl.Types.lbl_mut with Asttypes.Mutable -> true | _ -> false
    in
    if mutable_lbl then check_field_access ctx st e.exp_loc lbl;
    walk ctx st e1
  | Texp_assert _ ->
    (* assert false (and a failed assert generally) raises. *)
    raise_edge ctx st e.exp_loc;
    List.fold_left (walk ctx) st (subexprs e)
  | _ ->
    (* Constructs with no lock-relevant control flow: walk the children
       in order with the current state. *)
    List.fold_left (walk ctx) st (subexprs e)

and walk_case : 'k. ctx -> wst -> 'k case -> wst =
 fun ctx st c ->
  match c.c_guard with
  | Some g ->
    let st = walk ctx st g in
    walk ctx st c.c_rhs
  | None -> walk ctx st c.c_rhs

(* A lambda that runs in its own context (deferred call or other
   domain): locks do not flow in, and any lock acquired inside must be
   released before the lambda returns — the closure escapes, so nobody
   else can release it. *)
and walk_fresh ctx ~in_spawn e =
  let final =
    walk ctx { held = []; prot = S.empty; diverged = false; in_spawn } e
  in
  if (not ctx.no_rule2) && not final.diverged then
    List.iter
      (fun (l, loc) ->
        emit ctx ~loc ~rule:"lock-leak"
          (Printf.sprintf
             "write lock %s acquired here is still held at function exit \
              on some path"
             l))
      final.held

and raise_edge ctx st loc =
  if not ctx.no_rule2 then begin
    let leaking =
      List.filter (fun (l, _) -> not (S.mem l st.prot)) st.held
    in
    List.iter
      (fun (l, _) ->
        emit ctx ~loc ~rule:"lock-raise"
          (Printf.sprintf
             "raises while holding write lock %s with no handler on the \
              exception edge (release with write_abort/write_unlock or \
              wrap in critical)"
             l))
      leaking
  end

and join ctx entry loc sts =
  let live = List.filter (fun s -> not s.diverged) sts in
  match live with
  | [] -> { entry with diverged = true }
  | first :: rest ->
    if
      (not ctx.no_rule2)
      && List.exists
           (fun s -> not (S.equal (held_names s) (held_names first)))
           rest
    then
      emit ctx ~loc ~rule:"lock-divergent"
        "branches disagree on which write locks are held at the join \
         point";
    first

and walk_apply ctx st e p args =
  let walk_args st =
    List.fold_left
      (fun st (_, a) ->
        match a with Some a -> walk ctx st a | None -> st)
      st args
  in
  match (List.rev (norm_path p), nolabel_args args) with
  | [ "set"; "Atomic" ], [ a; v ] ->
    (* Rule 4: non-atomic read-modify-write outside a lock-held
       region. *)
    let st = walk_args st in
    if contains_get (render a) v && List.length st.held = 0 then
      emit ctx ~loc:e.exp_loc ~rule:"atomic-rmw"
        (Printf.sprintf
           "Atomic.set %s (... Atomic.get %s ...) is a lost-update \
            window; use fetch_and_add / compare_and_set, or hold the \
            lock"
           (render a) (render a));
    st
  | [ "lock"; "Mutex" ], [ m ] ->
    let st = walk_args st in
    acquire st (render m) e.exp_loc
  | [ "unlock"; "Mutex" ], [ m ] ->
    let st = walk_args st in
    release st (render m)
  | "upgrade_or_restart" :: _, a :: _ ->
    let st = walk_args st in
    acquire st (render a) e.exp_loc
  | ("write_unlock" | "write_abort") :: _, a :: _ ->
    let st = walk_args st in
    release st (render a)
  | "critical" :: _, [ a; { exp_desc = Texp_function { cases; _ }; _ } ] ->
    (* [critical l f] runs [f] with [l] held by the caller and releases
       [l] on the exception edge; on normal return the caller still
       holds it. *)
    let lock = render a in
    let inner =
      {
        st with
        held =
          (if List.mem_assoc lock st.held then st.held
           else (lock, e.exp_loc) :: st.held);
        prot = S.add lock st.prot;
      }
    in
    List.iter
      (fun c ->
        let out = walk ctx inner c.c_rhs in
        if (not ctx.no_rule2) && not out.diverged then
          List.iter
            (fun (l, loc) ->
              if not (List.mem_assoc l inner.held) then
                emit ctx ~loc ~rule:"lock-leak"
                  (Printf.sprintf
                     "write lock %s acquired inside a critical body is \
                      still held at its exit"
                     l))
            out.held)
      cases;
    st
  | [ "spawn"; "Domain" ], [ f ] ->
    (match f.exp_desc with
    | Texp_function { cases; _ } ->
      List.iter (fun c -> walk_fresh ctx ~in_spawn:true c.c_rhs) cases
    | _ -> ignore (walk ctx st f));
    st
  | _ when raising_fn p ->
    let st = walk_args st in
    raise_edge ctx st e.exp_loc;
    { st with diverged = true }
  | _ -> walk_args st

and check_field_access ctx st loc (lbl : Types.label_description) =
  if st.in_spawn then begin
    let mutable_lbl =
      match lbl.Types.lbl_mut with Asttypes.Mutable -> true | _ -> false
    in
    if mutable_lbl && Option.is_none (lookup_label ctx.reg lbl) then
      emit ctx ~loc ~rule:"unguarded-access"
        (Printf.sprintf
           "access to unannotated mutable field %s inside a Domain.spawn \
            closure"
           lbl.Types.lbl_name)
  end

(* A top-level binding: set the slug, flip the primitive gate, walk. *)
let walk_top ctx (vb : value_binding) =
  let name = Option.value (pat_var_name vb.vb_pat) ~default:"<toplevel>" in
  ctx.slug <- name;
  ctx.no_rule2 <- in_olc ctx && S.mem name lock_primitives;
  walk_fresh ctx ~in_spawn:false vb.vb_expr;
  ctx.no_rule2 <- false

(* Strip the parameter chain off a function to its body. *)
let rec function_body e =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when Option.is_none c.c_guard ->
    function_body c.c_rhs
  | _ -> e

(* ------------------------------------------------------------------ *)
(* Rule 3: yield-point coverage.                                       *)

let yield_paths rev_comps =
  match rev_comps with
  | ("point" | "fire" | "inject") :: "Fault" :: _ -> true
  | "wait" :: "Condition" :: _ -> true
  | ("sleepf" | "sleep") :: "Unix" :: _ -> true
  | "join" :: "Domain" :: _ -> true
  | ("pop_batch" | "push" | "close") :: "Mpsc_queue" :: _ -> true
  | _ -> false

let sync_paths rev_comps =
  match rev_comps with
  | _ :: m :: _ ->
    List.mem m [ "Atomic"; "Mutex"; "Condition"; "Domain"; "Mpsc_queue" ]
  | _ -> false

let sync_constructor name =
  List.mem name [ "Restart"; "Injected"; "Stale_generation" ]

(* Scan [e] (including nested lambdas) for direct yield sites, direct
   sync touches, and calls to module-local definitions. *)
let scan_expr e =
  let yields = ref false and sync = ref false and calls = ref S.empty in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_ident (p, _, _) ->
            let rev = List.rev (norm_path p) in
            if yield_paths rev then yields := true;
            if sync_paths rev then sync := true
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
            (* Only applied idents count as calls: a bare variable
               reference must not pull in an unrelated same-named
               binding through the transitive-closure map. *)
            (match norm_path p with
            | [ n ] -> calls := S.add n !calls
            | _ -> ())
          | Texp_construct (_, cd, _) ->
            if sync_constructor cd.Types.cstr_name then sync := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
      pat =
        (fun (type k) sub (x : k general_pattern) ->
          (match x.pat_desc with
          | Tpat_construct (_, cd, _, _) ->
            if sync_constructor cd.Types.cstr_name then sync := true
          | _ -> ());
          Tast_iterator.default_iterator.pat sub x);
    }
  in
  it.expr it e;
  (!yields, !sync, !calls)

type scan = { s_yields : bool; s_sync : bool; s_calls : S.t }

let scan_of e =
  let y, s, c = scan_expr e in
  { s_yields = y; s_sync = s; s_calls = c }

(* Transitive closure of a predicate over same-module calls. *)
let closure defs base_of =
  let memo : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec has name =
    match Hashtbl.find_opt memo name with
    | Some b -> b
    | None ->
      Hashtbl.replace memo name false;
      (* cycle-safe *)
      let bodies = Hashtbl.find_all defs name in
      let b =
        List.exists
          (fun body ->
            let sc = scan_of body in
            base_of sc || S.exists has sc.s_calls)
          bodies
      in
      Hashtbl.replace memo name b;
      b
  in
  has

let check_yield_points ctx (str : structure) =
  let has_yield = closure ctx.defs (fun sc -> sc.s_yields) in
  let touches_sync = closure ctx.defs (fun sc -> sc.s_sync) in
  let expr_yields e =
    let sc = scan_of e in
    sc.s_yields || S.exists has_yield sc.s_calls
  in
  let expr_sync e =
    let sc = scan_of e in
    sc.s_sync || S.exists touches_sync sc.s_calls
  in
  let flag loc what =
    let diag =
      Report.of_location ~rule:"yield-point"
        ~msg:
          (Printf.sprintf
             "%s touches synchronization but contains no yield site \
              (Fault.point / Condition.wait / sleep); ei_sim cannot \
              interleave it"
             what)
        loc ~file:ctx.file
    in
    ctx.findings <- { diag; slug = ctx.slug } :: ctx.findings
  in
  (* While loops, wherever they appear. *)
  let current = ref "<toplevel>" in
  let self_rec_calls name body =
    let sc = scan_of body in
    S.mem name sc.s_calls
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          (match pat_var_name vb.vb_pat with
          | Some name -> (
            let saved = !current in
            current := name;
            ctx.slug <- name;
            (* Self-recursive retry function. *)
            let body = function_body vb.vb_expr in
            (match vb.vb_expr.exp_desc with
            | Texp_function _
              when self_rec_calls name body
                   && expr_sync body
                   && not (expr_yields body) ->
              flag vb.vb_pat.pat_loc
                (Printf.sprintf "recursive retry function %s" name)
            | _ -> ());
            Tast_iterator.default_iterator.value_binding sub vb;
            current := saved)
          | None -> Tast_iterator.default_iterator.value_binding sub vb);
          ());
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_while (cond, body) ->
            if
              (expr_sync body || expr_sync cond)
              && not (expr_yields body || expr_yields cond)
            then begin
              ctx.slug <- !current;
              flag e.exp_loc "while loop"
            end
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Module driver.                                                      *)

let collect_defs defs (str : structure) =
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          (match (pat_var_name vb.vb_pat, vb.vb_expr.exp_desc) with
          (* Only function bindings enter the call graph: plain value
             bindings (e.g. two locals both named [r]) would otherwise
             alias across the whole module. *)
          | Some name, Texp_function _ -> Hashtbl.add defs name vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it str

let analyze_structure ~file ~reg (str : structure) =
  let ctx =
    {
      file;
      reg;
      findings = [];
      inventory = [];
      slug = "<toplevel>";
      no_rule2 = false;
      unguarded_idents = Hashtbl.create 8;
      defs = Hashtbl.create 64;
    }
  in
  collect_defs ctx.defs str;
  (* Rule 1 declarations + rules 2/4 walk, in structure order so
     module-level mutable state is known before the code that uses
     it. *)
  let rec do_item (item : structure_item) =
    match item.str_desc with
    | Tstr_type (_, tds) -> List.iter (check_type_declaration ctx) tds
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          check_module_binding ctx vb;
          walk_top ctx vb)
        vbs
    | Tstr_eval (e, _) ->
      ctx.slug <- "<toplevel>";
      ignore
        (walk ctx
           { held = []; prot = S.empty; diverged = false; in_spawn = false }
           e)
    | Tstr_module mb -> do_module_expr mb.mb_expr
    | Tstr_recmodule mbs -> List.iter (fun mb -> do_module_expr mb.mb_expr) mbs
    | _ -> ()
  and do_module_expr me =
    match me.mod_desc with
    | Tmod_structure s -> List.iter do_item s.str_items
    | Tmod_constraint (me, _, _, _) -> do_module_expr me
    | Tmod_functor (_, me) -> do_module_expr me
    | _ -> ()
  in
  List.iter do_item str.str_items;
  ctx.slug <- "<toplevel>";
  check_yield_points ctx str;
  {
    findings = List.rev ctx.findings;
    inventory = List.rev ctx.inventory;
  }

(* ------------------------------------------------------------------ *)
(* Cmt loading.                                                        *)

let load_cmt path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation str; cmt_sourcefile = Some src; _ }
    when not (Filename.check_suffix src ".ml-gen") ->
    Some (src, str)
  | _ -> None
  | exception _ -> None

let analyze_cmts paths =
  let mods = List.filter_map load_cmt paths in
  let mods =
    List.sort (fun (a, _) (b, _) -> String.compare a b) mods
  in
  (* Byte and native compilation both emit a cmt for the same source
     (-bin-annot applies to both); analyze each module once. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let mods =
    List.filter
      (fun (file, _) ->
        if Hashtbl.mem seen file then false
        else begin
          Hashtbl.add seen file ();
          true
        end)
      mods
  in
  let reg : registry = Hashtbl.create 256 in
  List.iter (fun (_, str) -> registry_of_structure reg str) mods;
  let results =
    List.map (fun (file, str) -> analyze_structure ~file ~reg str) mods
  in
  {
    findings = List.concat_map (fun (r : result) -> r.findings) results;
    inventory = List.concat_map (fun (r : result) -> r.inventory) results;
  }

(* ------------------------------------------------------------------ *)
(* Baseline.                                                           *)

(* One entry per line: [rule<space>file<space>slug], # comments.  Keys
   are stable across edits because they carry no line numbers. *)
let finding_key f = Printf.sprintf "%s %s %s" f.diag.rule f.diag.file f.slug

let parse_baseline content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.equal line "" || Char.equal line.[0] '#' then None
         else Some line)

let apply_baseline ~baseline findings =
  let used : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let keep, suppressed =
    List.partition
      (fun f ->
        let k = finding_key f in
        if List.exists (String.equal k) baseline then begin
          Hashtbl.replace used k ();
          false
        end
        else true)
      findings
  in
  let unused =
    List.filter (fun b -> not (Hashtbl.mem used b)) baseline
  in
  (keep, List.length suppressed, unused)

let rules_help () =
  String.concat "\n"
    [
      Printf.sprintf "%-16s %s" "unguarded-state"
        "mutable module/record state needs [@ei.guarded_by]/[@ei.single_domain]";
      Printf.sprintf "%-16s %s" "unguarded-access"
        "unannotated mutable state touched inside a Domain.spawn closure";
      Printf.sprintf "%-16s %s" "lock-leak"
        "write lock acquired but not released on every normal exit";
      Printf.sprintf "%-16s %s" "lock-divergent"
        "branches disagree on held locks at a join point";
      Printf.sprintf "%-16s %s" "lock-raise"
        "raise while holding a write lock with no releasing handler";
      Printf.sprintf "%-16s %s" "lock-loop"
        "loop body does not preserve the held-lock set";
      Printf.sprintf "%-16s %s" "yield-point"
        "sync-touching retry loop without a Fault.point yield site";
      Printf.sprintf "%-16s %s" "atomic-rmw"
        "Atomic.set of a value derived from Atomic.get outside a lock";
    ]
