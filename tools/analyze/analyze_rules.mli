(** ei_race rules engine: typed concurrency-discipline analysis over
    the [.cmt] typedtrees dune produces.

    Rule families: [unguarded-state] / [unguarded-access] (every
    module-level and record-level mutable datum must be atomic,
    lock-guarded — [@ei.guarded_by "<lock>"] — or confined —
    [@ei.single_domain]), [lock-leak] / [lock-divergent] /
    [lock-raise] / [lock-loop] (every acquired write lock is released
    exactly once on every exit, including exception edges),
    [yield-point] (sync-touching retry loops must contain a
    [Fault.point] site so the ei_sim scheduler can interleave them),
    and [atomic-rmw] ([Atomic.set a (f (Atomic.get a))] outside a
    lock-held region).  Findings carry a stable [slug] (the enclosing
    top-level binding) used as the baseline suppression key. *)

type finding = { diag : Report.diag; slug : string }

type inv_entry = {
  inv_file : string;
  inv_line : int;
  inv_name : string;
  inv_kind : string;
      (** atomic | mutex | condition | ref | array | table |
          mutable-field | array-field *)
  inv_guard : string option;  (** rendered annotation, [None] = bare *)
}

type result = { findings : finding list; inventory : inv_entry list }

val load_cmt : string -> (string * Typedtree.structure) option
(** Read one [.cmt]; [Some (source_path, typedtree)] for an
    implementation, [None] for interfaces, generated alias modules and
    unreadable files. *)

val analyze_cmts : string list -> result
(** Load every [.cmt] path, build the cross-module annotation registry,
    and run all rule families over each implementation, in source-path
    order. *)

val finding_key : finding -> string
(** The baseline key: ["rule file slug"] — stable across line-number
    churn. *)

val parse_baseline : string -> string list
(** Baseline file contents -> entry keys ([#] comments and blank lines
    dropped). *)

val apply_baseline :
  baseline:string list -> finding list -> finding list * int * string list
(** [(remaining, suppressed_count, unused_entries)]. *)

val rules_help : unit -> string
(** One line per rule, for [--rules]. *)
