(* Shared driver for the [ei_race] executable and the [ei analyze] CLI
   subcommand: root resolution, cmt collection, baseline diffing and
   the text/JSON renderings. *)

let default_roots =
  [
    "lib/olc"; "lib/shard"; "lib/core"; "lib/fault"; "lib/obs"; "lib/btree";
    "lib/wal";
  ]

let rec collect path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

type run = {
  diags : Report.diag list;  (* post-baseline, sorted *)
  suppressed : int;  (* findings matched by the baseline *)
  unused : string list;  (* baseline entries nothing matched *)
  inventory : Analyze_rules.inv_entry list;
  cmts_scanned : int;
}

let read_file f =
  let ic = open_in_bin f in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

(* Collect a root's cmts; when the path as given holds none (a source
   checkout — cmts live in the build tree), fall back to
   _build/default/<root>, so [ei analyze lib/olc] works from a repo
   root and from inside _build/default alike. *)
let collect_root r =
  let fallback =
    let p = Filename.concat (Filename.concat "_build" "default") r in
    if Sys.file_exists p then Some p else None
  in
  match (Sys.file_exists r, fallback) with
  | false, None ->
    Error (Printf.sprintf "no such file or directory: %s" r)
  | false, Some p -> Ok (collect p [])
  | true, fb -> (
    match (collect r [], fb) with
    | [], Some p -> Ok (collect p [])
    | cmts, _ -> Ok cmts)

let execute ?baseline_file roots =
  let roots = match roots with [] -> default_roots | _ -> roots in
  match
    List.partition_map
      (fun r ->
        match collect_root r with
        | Ok cmts -> Either.Left cmts
        | Error msg -> Either.Right msg)
      roots
  with
  | _, msg :: _ -> Error msg
  | per_root, [] -> (
    let cmts = List.sort String.compare (List.concat per_root) in
    let result = Analyze_rules.analyze_cmts cmts in
    match baseline_file with
    | Some f when not (Sys.file_exists f) ->
      Error (Printf.sprintf "baseline file not found: %s" f)
    | _ ->
      let baseline =
        match baseline_file with
        | None -> []
        | Some f -> Analyze_rules.parse_baseline (read_file f)
      in
      let remaining, suppressed, unused =
        Analyze_rules.apply_baseline ~baseline result.findings
      in
      let diags =
        List.sort Report.compare_diag
          (List.map
             (fun (f : Analyze_rules.finding) -> f.diag)
             remaining)
      in
      Ok
        {
          diags;
          suppressed;
          unused;
          inventory = result.inventory;
          cmts_scanned = List.length cmts;
        })

let print_text ~show_inventory r =
  List.iter (fun d -> Format.printf "%a@." Report.pp_diag d) r.diags;
  if show_inventory then begin
    Format.printf "-- shared-state inventory (%d entries)@."
      (List.length r.inventory);
    List.iter
      (fun (i : Analyze_rules.inv_entry) ->
        Format.printf "%s:%d: %-14s %-28s %s@." i.inv_file i.inv_line
          i.inv_kind i.inv_name
          (match i.inv_guard with Some g -> g | None -> "UNANNOTATED"))
      r.inventory
  end;
  List.iter
    (fun b -> Printf.eprintf "ei_race: unused baseline entry: %s\n" b)
    r.unused;
  Format.printf "ei_race: %d finding(s), %d baselined, %d modules@."
    (List.length r.diags) r.suppressed
    (List.length
       (List.sort_uniq String.compare
          (List.map (fun (d : Report.diag) -> d.Report.file) r.diags)))

let inv_json (i : Analyze_rules.inv_entry) =
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"name\": \"%s\", \"kind\": \"%s\", \
     \"guard\": %s}"
    (Report.json_escape i.inv_file)
    i.inv_line
    (Report.json_escape i.inv_name)
    (Report.json_escape i.inv_kind)
    (match i.inv_guard with
    | Some g -> Printf.sprintf "\"%s\"" (Report.json_escape g)
    | None -> "null")

let json_string r =
  let extra =
    [
      ( "inventory",
        "[" ^ String.concat ", " (List.map inv_json r.inventory) ^ "]" );
      ("baselined", string_of_int r.suppressed);
      ( "unused_baseline",
        "["
        ^ String.concat ", "
            (List.map
               (fun b -> Printf.sprintf "\"%s\"" (Report.json_escape b))
               r.unused)
        ^ "]" );
      ("cmts_scanned", string_of_int r.cmts_scanned);
    ]
  in
  Report.to_json ~tool:"ei_race" ~extra r.diags

(* Exit status shared by both frontends: 1 iff findings remain. *)
let exit_code r = match r.diags with [] -> 0 | _ -> 1
