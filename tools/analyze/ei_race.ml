(* ei_race: typed concurrency-discipline analyzer driver.

   Usage:
     ei_race [--rules] [--baseline FILE] [--format=text|json]
             [--inventory] [DIR|FILE.cmt ...]

   Directories are searched recursively for .cmt files (dune keeps
   them under <dir>/.<lib>.objs/byte/ inside _build, so pass build
   paths — the @analyze alias runs this from _build/default with the
   library source dirs; roots that only exist under _build/default are
   resolved there).  Findings are diffed against the baseline file:
   baselined findings are suppressed, anything else exits 1, so a
   *new* finding fails the build without blocking on the accepted
   legacy patterns listed in the baseline. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (String.equal "--rules") args then begin
    print_endline (Analyze_rules.rules_help ());
    exit 0
  end;
  let fmt, args =
    match Report.split_format_arg args with
    | Ok (fmt, rest) -> (Option.value fmt ~default:Report.Text, rest)
    | Error v ->
      Printf.eprintf "ei_race: unknown format %S (expected text or json)\n" v;
      exit 2
  in
  let show_inventory = List.exists (String.equal "--inventory") args in
  let args = List.filter (fun a -> not (String.equal a "--inventory")) args in
  let rec split_baseline acc = function
    | "--baseline" :: file :: rest -> (Some file, List.rev_append acc rest)
    | a :: rest -> split_baseline (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let baseline_file, roots = split_baseline [] args in
  match Analyze_driver.execute ?baseline_file roots with
  | Error msg ->
    Printf.eprintf "ei_race: %s\n" msg;
    exit 2
  | Ok r ->
    (match fmt with
    | Report.Text -> Analyze_driver.print_text ~show_inventory r
    | Report.Json -> print_endline (Analyze_driver.json_string r));
    exit (Analyze_driver.exit_code r)
