(* Unit tests for ei_storage: the row table (tuple ids, key loads, load
   counters), the incremental tracker, and sanity anchors for the memory
   model's formulas. *)

module Table = Ei_storage.Table
module Tracker = Ei_storage.Tracker
module Memmodel = Ei_storage.Memmodel

let test_table () =
  let t = Table.create ~initial_capacity:2 ~key_len:8 () in
  Alcotest.(check int) "empty" 0 (Table.length t);
  (* Appends return consecutive tids and grow past the initial capacity. *)
  let tids = List.init 100 (fun i -> Table.append t (Ei_util.Key.of_int i)) in
  Alcotest.(check (list int)) "tids consecutive" (List.init 100 Fun.id) tids;
  Alcotest.(check int) "length" 100 (Table.length t);
  Alcotest.(check int) "key_len" 8 (Table.key_len t);
  (* Loads return the stored key and are counted. *)
  Table.reset_loads t;
  let load = Table.loader t in
  for i = 0 to 99 do
    Alcotest.(check string) "load" (Ei_util.Key.of_int i) (load i)
  done;
  Alcotest.(check int) "loads counted" 100 (Table.loads t);
  Table.reset_loads t;
  Alcotest.(check int) "loads reset" 0 (Table.loads t);
  Alcotest.(check int) "data bytes" (100 * (8 + 24))
    (Table.data_bytes ~row_bytes:24 t)

let test_liveness () =
  let t = Table.create ~initial_capacity:4 ~key_len:8 () in
  let n = 10_000 in
  (* crosses several liveness chunks and many grows *)
  for i = 0 to n - 1 do
    let tid = Table.append t (Ei_util.Key.of_int i) in
    Alcotest.(check bool) "rows start dead" false (Table.is_live t tid)
  done;
  let live i = i mod 3 = 0 in
  for tid = 0 to n - 1 do
    if live tid then Table.mark_live t tid
  done;
  (* Growth after marking must not shed a single mark. *)
  for i = n to (2 * n) - 1 do
    ignore (Table.append t (Ei_util.Key.of_int i))
  done;
  for tid = 0 to n - 1 do
    Alcotest.(check bool) "mark survives growth" (live tid)
      (Table.is_live t tid)
  done;
  Table.mark_dead t 0;
  Alcotest.(check bool) "mark_dead" false (Table.is_live t 0);
  let folded =
    Table.fold_live t (fun tid key acc ->
        Alcotest.(check string) "fold key" (Ei_util.Key.of_int tid) key;
        acc + 1) 0
  in
  Alcotest.(check int) "fold_live count" ((n + 2) / 3 - 1) folded

(* The growth-stability race itself: one domain appends (growing the
   table from a tiny capacity), the other marks each row live as soon
   as its tid is published.  With a flat liveness buffer a grow blits
   and replaces it, losing any mark that lands in the old bytes — the
   chunked store must not lose one. *)
let test_liveness_grow_race () =
  let t = Table.create ~initial_capacity:2 ~key_len:8 () in
  let n = 30_000 in
  let published = Atomic.make 0 in
  let marker =
    Domain.spawn (fun () ->
        let next = ref 0 in
        while !next < n do
          let upto = Atomic.get published in
          while !next < upto do
            Table.mark_live t !next;
            incr next
          done;
          if !next < n then Domain.cpu_relax ()
        done)
  in
  for i = 0 to n - 1 do
    let tid = Table.append t (Ei_util.Key.of_int i) in
    Atomic.set published (tid + 1)
  done;
  Domain.join marker;
  let missing = ref 0 in
  for tid = 0 to n - 1 do
    if not (Table.is_live t tid) then incr missing
  done;
  Alcotest.(check int) "no mark lost to growth" 0 !missing

let test_tracker () =
  let tr = Tracker.create () in
  Tracker.add tr 100;
  Tracker.add tr 50;
  Alcotest.(check int) "bytes" 150 (Tracker.bytes tr);
  Tracker.sub tr 120;
  Alcotest.(check int) "after sub" 30 (Tracker.bytes tr);
  Alcotest.(check int) "high water" 150 (Tracker.high_water tr);
  Tracker.add tr 200;
  Alcotest.(check int) "new high water" 230 (Tracker.high_water tr);
  Tracker.reset tr;
  Alcotest.(check int) "reset" 0 (Tracker.bytes tr)

let test_memmodel_anchors () =
  (* Anchor values the paper's arithmetic relies on. *)
  (* A 16-slot STX leaf with 8-byte keys: 16*(8+8) data + header + links. *)
  Alcotest.(check int) "std leaf 16x8B" (16 + 16 + (16 * 16))
    (Memmodel.std_leaf_bytes ~capacity:16 ~key_len:8);
  (* SeqTree at ~1 B/key for <=32-byte keys: bits array is 1 byte/entry. *)
  Alcotest.(check int) "1B bit entries to 32B keys" 1
    (Memmodel.bits_entry_bytes ~key_len:32);
  Alcotest.(check int) "2B bit entries beyond" 2
    (Memmodel.bits_entry_bytes ~key_len:33);
  (* §5.4's arithmetic: for 32-byte keys tuple ids are ~90% of a SeqTree
     node (bits ~1 B/key vs 8 B/key of tids, header amortised away). *)
  let cap = 128 in
  let total =
    Memmodel.seqtree_bytes ~capacity:cap ~key_len:32 ~levels:2 ~tid_slots:cap
      ~breathing:false
  in
  let tid_fraction = float_of_int (cap * 8) /. float_of_int total in
  Alcotest.(check bool) "tids ~90% of compact node" true
    (tid_fraction > 0.85 && tid_fraction < 0.93);
  (* §4's requirement at 16-byte keys without breathing. *)
  Alcotest.(check bool) "compact(2n) < std(n), 16B" true
    (Memmodel.seqtree_bytes ~capacity:32 ~key_len:16 ~levels:2 ~tid_slots:32
       ~breathing:false
    < Memmodel.std_leaf_bytes ~capacity:16 ~key_len:16);
  (* Prefix leaf degenerates to a standard leaf plus one byte when keys
     share nothing. *)
  Alcotest.(check int) "prefix leaf, no sharing"
    (Memmodel.std_leaf_bytes ~capacity:16 ~key_len:16 + 1)
    (Memmodel.prefix_leaf_bytes ~capacity:16 ~key_len:16 ~prefix_len:0);
  (* The §5.1 per-key progression of the three blind-trie layouts. *)
  let per_key f = float_of_int (f ~capacity:128 ~key_len:8) /. 128.0 in
  let seq =
    float_of_int
      (Memmodel.seqtree_bytes ~capacity:128 ~key_len:8 ~levels:0 ~tid_slots:128
         ~breathing:false)
    /. 128.0
  in
  let sub = per_key Memmodel.subtrie_bytes in
  let str = per_key Memmodel.stringtrie_bytes in
  Alcotest.(check bool) "seqtrie < subtrie < stringtrie" true
    (seq < sub && sub < str);
  Alcotest.(check bool) "~1B/key steps" true
    (sub -. seq > 0.8 && sub -. seq < 1.2 && str -. sub > 0.8 && str -. sub < 1.4)

let () =
  Alcotest.run "ei_storage"
    [
      ( "storage",
        [
          Alcotest.test_case "table" `Quick test_table;
          Alcotest.test_case "row liveness across growth" `Quick test_liveness;
          Alcotest.test_case "liveness marks vs grow race" `Quick
            test_liveness_grow_race;
          Alcotest.test_case "tracker" `Quick test_tracker;
          Alcotest.test_case "memory-model anchors" `Quick test_memmodel_anchors;
        ] );
    ]
