(* Regression tests for the ei_race concurrency-discipline analyzer.

   The fixtures under fixtures_analyze/ are compiled by dune like any
   library, so their .cmt typedtrees sit in the build tree next to this
   test; the analyzer must fire on every planted violation at its exact
   file:line:col, and stay silent on the clean fixture and on every
   deliberately-annotated declaration inside the others.  The baseline
   machinery is exercised separately: a matching entry suppresses its
   finding, a stale entry is reported as unused. *)

let fixture_dir = "fixtures_analyze/.analyze_fixtures.objs/byte"

let fixture_cmts () =
  if not (Sys.file_exists fixture_dir) then
    Alcotest.failf "fixture cmts not found at %s (cwd %s)" fixture_dir
      (Sys.getcwd ());
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cmt")
  |> List.map (Filename.concat fixture_dir)

let result = lazy (Analyze_rules.analyze_cmts (fixture_cmts ()))

let findings_of file =
  List.filter
    (fun (f : Analyze_rules.finding) ->
      String.equal (Filename.basename f.diag.Report.file) file)
    (Lazy.force result).Analyze_rules.findings

let check_firing ~file expected =
  let got =
    List.sort compare
      (List.map
         (fun (f : Analyze_rules.finding) ->
           (f.diag.Report.line, f.diag.Report.col, f.diag.Report.rule))
         (findings_of file))
  in
  let expected = List.sort compare expected in
  let show l =
    String.concat "; "
      (List.map (fun (l, c, r) -> Printf.sprintf "%d:%d %s" l c r) l)
  in
  if got <> expected then
    Alcotest.failf "%s: expected [%s], got [%s]" file (show expected)
      (show got)

(* --- rule 1: shared-state inventory ---------------------------------- *)

let test_unguarded () =
  check_firing ~file:"fix_unguarded.ml"
    [
      (6, 2, "unguarded-state");  (* mutable field cache.hits *)
      (7, 2, "unguarded-state");  (* array field cache.slots *)
      (11, 4, "unguarded-state");  (* module-level ref total *)
      (13, 4, "unguarded-state");  (* module-level table, through a
                                      type constraint *)
    ]

let test_inventory_guards () =
  (* The annotated declarations appear in the inventory WITH their
     guards — suppressed from findings, not from the inventory. *)
  let inv = (Lazy.force result).Analyze_rules.inventory in
  let guard_of name =
    match
      List.find_opt
        (fun (i : Analyze_rules.inv_entry) ->
          String.equal i.inv_name name
          && String.equal (Filename.basename i.inv_file) "fix_unguarded.ml")
        inv
    with
    | Some i -> i.inv_guard
    | None -> Alcotest.failf "no inventory entry for %s" name
  in
  Alcotest.(check (option string))
    "cache.misses" (Some "guarded_by lock") (guard_of "cache.misses");
  Alcotest.(check (option string))
    "scratch" (Some "single_domain") (guard_of "scratch");
  Alcotest.(check (option string)) "total" None (guard_of "total")

(* --- rule 2: lock-release discipline ---------------------------------- *)

let test_lock_discipline () =
  check_firing ~file:"fix_lock_leak.ml"
    [
      (11, 2, "lock-divergent");  (* leak: branches disagree *)
      (11, 5, "lock-leak");  (* leak: held at exit *)
      (16, 19, "lock-raise");  (* raise_locked: failwith while locked *)
      (29, 2, "lock-divergent");  (* mutex_leak: one path unlocks *)
    ]

(* --- rule 3: yield-point coverage ------------------------------------- *)

let test_yield_points () =
  check_firing ~file:"fix_spin.ml"
    [
      (4, 8, "yield-point");  (* spin_cas retry function *)
      (10, 2, "yield-point");  (* busy_wait while loop *)
    ]

(* --- rule 4: atomic RMW hygiene --------------------------------------- *)

let test_atomic_rmw () =
  check_firing ~file:"fix_rmw.ml" [ (4, 30, "atomic-rmw") ]

(* --- clean fixture ----------------------------------------------------- *)

let test_clean () = check_firing ~file:"fix_clean.ml" []

(* --- baseline ---------------------------------------------------------- *)

let test_baseline () =
  let findings = (Lazy.force result).Analyze_rules.findings in
  let rmw =
    match
      List.find_opt
        (fun (f : Analyze_rules.finding) ->
          String.equal f.diag.Report.rule "atomic-rmw")
        findings
    with
    | Some f -> f
    | None -> Alcotest.fail "no atomic-rmw finding to baseline"
  in
  let baseline =
    Analyze_rules.parse_baseline
      ("# comment\n\n" ^ Analyze_rules.finding_key rmw ^ "\nstale entry x\n")
  in
  let remaining, suppressed, unused =
    Analyze_rules.apply_baseline ~baseline findings
  in
  Alcotest.(check int) "suppressed" 1 suppressed;
  Alcotest.(check int)
    "remaining" (List.length findings - 1) (List.length remaining);
  Alcotest.(check (list string)) "unused" [ "stale entry x" ] unused;
  if
    List.exists
      (fun (f : Analyze_rules.finding) ->
        String.equal f.diag.Report.rule "atomic-rmw"
        && String.equal
             (Filename.basename f.diag.Report.file)
             "fix_rmw.ml")
      remaining
  then Alcotest.fail "baselined finding still reported"

let () =
  Alcotest.run "analyze"
    [
      ( "rules",
        [
          Alcotest.test_case "rule 1: unguarded shared state" `Quick
            test_unguarded;
          Alcotest.test_case "rule 1: inventory carries guards" `Quick
            test_inventory_guards;
          Alcotest.test_case "rule 2: lock-release discipline" `Quick
            test_lock_discipline;
          Alcotest.test_case "rule 3: yield-point coverage" `Quick
            test_yield_points;
          Alcotest.test_case "rule 4: atomic RMW hygiene" `Quick
            test_atomic_rmw;
          Alcotest.test_case "clean fixture is silent" `Quick test_clean;
        ] );
      ( "baseline",
        [ Alcotest.test_case "suppress and stale entries" `Quick test_baseline ]
      );
    ]
