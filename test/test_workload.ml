(* Tests for the workload generators (YCSB, IOTTA-like trace, Fig-1
   volume model) and a cross-index integration battery: every index kind
   in the registry survives every YCSB workload with consistent counts. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Ycsb = Ei_workload.Ycsb
module Iotta = Ei_workload.Iotta
module Datagen = Ei_workload.Datagen
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops

(* --- IOTTA trace ----------------------------------------------------- *)

let test_iotta_shape () =
  let rows = Iotta.generate ~rows:20_000 ~objects:5_000 () in
  Alcotest.(check int) "row count" 20_000 (Array.length rows);
  (* Timestamps strictly increasing => unique index keys. *)
  for i = 0 to Array.length rows - 2 do
    if rows.(i).Iotta.ts >= rows.(i + 1).Iotta.ts then
      Alcotest.fail "timestamps not strictly increasing"
  done;
  (* Object popularity is skewed: the most popular object accounts for
     far more than the uniform share. *)
  let counts = Hashtbl.create 1024 in
  Array.iter
    (fun r ->
      Hashtbl.replace counts r.Iotta.obj
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts r.Iotta.obj)))
    rows;
  let max_count = Hashtbl.fold (fun _ c m -> max c m) counts 0 in
  Alcotest.(check bool) "skewed objects" true (max_count > 20_000 / 5_000 * 10);
  (* Ops are valid indices and GETs dominate. *)
  let gets = Array.fold_left (fun a r -> if r.Iotta.op = 0 then a + 1 else a) 0 rows in
  Array.iter (fun r -> ignore (Iotta.op_name r.Iotta.op)) rows;
  Alcotest.(check bool) "GET-dominated" true (gets > Array.length rows / 3);
  (* Keys round-trip their ordering. *)
  let k1 = Iotta.key_of_row rows.(0) and k2 = Iotta.key_of_row rows.(1) in
  Alcotest.(check bool) "time-ordered keys" true (Key.compare k1 k2 < 0)

let test_iotta_deterministic () =
  let a = Iotta.generate ~seed:5 ~rows:1000 ~objects:100 () in
  let b = Iotta.generate ~seed:5 ~rows:1000 ~objects:100 () in
  Alcotest.(check bool) "same trace for same seed" true (a = b)

(* --- Fig 1 volumes ---------------------------------------------------- *)

let test_daily_volumes () =
  let v = Datagen.daily_volumes ~days:365 () in
  let mean, above_15, above_20, max_v = Datagen.stats v in
  Alcotest.(check bool) "mean ~1" true (abs_float (mean -. 1.0) < 0.05);
  (* The paper: "many days" at 1.5x, "some days" at 2x-3.5x. *)
  Alcotest.(check bool) "many 1.5x days" true (above_15 > 10);
  Alcotest.(check bool) "some 2x days" true (above_20 > 2);
  Alcotest.(check bool) "spikes up to 2x-3.5x" true (max_v >= 2.0 && max_v < 5.0)

(* --- YCSB -------------------------------------------------------------- *)

let mk_runner kind =
  let table = Table.create ~key_len:8 () in
  let index = Registry.make ~key_len:8 ~load:(Table.loader table) kind in
  let runner = Ycsb.create ~index ~table ~record_count:2_000 () in
  (runner, index)

let test_ycsb_load () =
  let runner, index = mk_runner Registry.Stx in
  Ycsb.load runner 2_000;
  Alcotest.(check int) "all loaded" 2_000 (index.Index_ops.count ())

let test_ycsb_key_uniqueness () =
  (* The bijective hash must produce distinct keys. *)
  let seen = Hashtbl.create 4096 in
  for seq = 0 to 9_999 do
    let k = Ycsb.key_of_seq seq in
    if Hashtbl.mem seen k then Alcotest.fail "key collision";
    Hashtbl.add seen k ()
  done

(* Every workload on every index kind: counts must stay consistent and no
   operation may lose a key. *)
let ycsb_matrix =
  let kinds =
    [
      Registry.Stx;
      Registry.Seqtree 128;
      Registry.Subtrie 64;
      Registry.Elastic (Ei_core.Elasticity.default_config ~size_bound:40_000);
      Registry.Hot;
      Registry.Art;
      Registry.Skiplist;
      Registry.Hybrid 0.08;
      Registry.Bwtree;
      Registry.Elastic_skiplist
        (Ei_core.Elastic_skiplist.default_config ~size_bound:60_000);
    ]
  in
  let workloads = [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ] in
  List.concat_map
    (fun kind ->
      List.map
        (fun w ->
          let name =
            Printf.sprintf "%s on %s" (Ycsb.workload_name w)
              (Registry.kind_name kind)
          in
          Alcotest.test_case name `Quick (fun () ->
              let runner, index = mk_runner kind in
              Ycsb.load runner 2_000;
              (* run raises if any read/update misses a loaded key *)
              ignore (Ycsb.run runner ~workload:w ~dist:Ycsb.Zipfian ~ops:2_000);
              ignore (Ycsb.run runner ~workload:w ~dist:Ycsb.Uniform ~ops:1_000);
              Alcotest.(check bool) "count grew or stable" true
                (index.Index_ops.count () >= 2_000)))
        workloads)
    kinds

(* --- MCAS --------------------------------------------------------------- *)

let test_mcas_kv () =
  let store = Ei_mcas.Store.create ~partitions:4 () in
  for i = 0 to 999 do
    Ei_mcas.Store.put store (string_of_int i) (string_of_int (i * i))
  done;
  for i = 0 to 999 do
    match Ei_mcas.Store.get store (string_of_int i) with
    | Some v -> Alcotest.(check string) "value" (string_of_int (i * i)) v
    | None -> Alcotest.fail "kv lost"
  done;
  Alcotest.(check bool) "delete" true (Ei_mcas.Store.delete store "5");
  Alcotest.(check bool) "gone" true (Ei_mcas.Store.get store "5" = None)

let test_mcas_log_table () =
  let store = Ei_mcas.Store.create () in
  let table =
    Ei_mcas.Log_table.create
      ~index_kind:(Registry.Elastic (Ei_core.Elasticity.default_config ~size_bound:1_000_000))
      ()
  in
  Ei_mcas.Store.attach_ado store ~partition:0 (Ei_mcas.Log_table.ado table);
  let rows = Iotta.generate ~rows:5_000 ~objects:1_000 () in
  Array.iter
    (fun r ->
      match Ei_mcas.Store.invoke store ~partition:0 (Ei_mcas.Ado.Ingest r) with
      | Ei_mcas.Ado.Ack -> ()
      | _ -> Alcotest.fail "unexpected response")
    rows;
  Alcotest.(check int) "rows" 5_000 (Ei_mcas.Log_table.row_count table);
  (* Point lookups return the full row. *)
  Array.iter
    (fun r ->
      match
        Ei_mcas.Store.invoke store ~partition:0
          (Ei_mcas.Ado.Lookup (Iotta.key_of_row r))
      with
      | Ei_mcas.Ado.Found (Some row) ->
        if row <> r then Alcotest.fail "row corrupted"
      | _ -> Alcotest.fail "row lost")
    rows;
  (* Scans visit the requested number of keys. *)
  (match
     Ei_mcas.Store.invoke store ~partition:0
       (Ei_mcas.Ado.Scan (Iotta.key_of_row rows.(100), 50))
   with
  | Ei_mcas.Ado.Scanned n -> Alcotest.(check int) "scan length" 50 n
  | _ -> Alcotest.fail "scan failed");
  (* Included-column monitoring query: cross-check against a direct
     computation over the trace. *)
  let start_row = 200 in
  let span = 400 in
  (match
     Ei_mcas.Store.invoke store ~partition:0
       (Ei_mcas.Ado.Distinct_objects (Iotta.key_of_row rows.(start_row), span))
   with
  | Ei_mcas.Ado.Distinct got ->
    let expect = Hashtbl.create 64 in
    for i = start_row to start_row + span - 1 do
      Hashtbl.replace expect rows.(i).Iotta.obj ()
    done;
    Alcotest.(check int) "distinct objects" (Hashtbl.length expect) got
  | _ -> Alcotest.fail "distinct query failed");
  (* Accounting is wired through. *)
  Alcotest.(check bool) "index memory positive" true
    (Ei_mcas.Store.ado_memory_bytes store ~partition:0 > 0);
  Alcotest.(check int) "data bytes" (5_000 * 32)
    (Ei_mcas.Store.ado_data_bytes store ~partition:0)

let test_mcas_partitioned () =
  (* The partitioned architecture: one log-table ADO per partition, rows
     routed by object id, one domain driving each partition's engine. *)
  let partitions = 4 in
  let store = Ei_mcas.Store.create ~partitions () in
  let tables =
    Array.init partitions (fun p ->
        let t = Ei_mcas.Log_table.create ~index_kind:(Registry.Seqtree 128) () in
        Ei_mcas.Store.attach_ado store ~partition:p (Ei_mcas.Log_table.ado t);
        t)
  in
  let rows = Iotta.generate ~rows:8_000 ~objects:1_000 () in
  let route r = r.Iotta.obj mod partitions in
  let worker p () =
    Array.iter
      (fun r ->
        if route r = p then
          match Ei_mcas.Store.invoke store ~partition:p (Ei_mcas.Ado.Ingest r) with
          | Ei_mcas.Ado.Ack -> ()
          | _ -> failwith "bad response")
      rows
  in
  List.iter Domain.join
    (List.init partitions (fun p -> Domain.spawn (worker p)));
  (* Every row is found in exactly its partition. *)
  Array.iter
    (fun r ->
      let p = route r in
      (match
         Ei_mcas.Store.invoke store ~partition:p
           (Ei_mcas.Ado.Lookup (Iotta.key_of_row r))
       with
      | Ei_mcas.Ado.Found (Some row) when row = r -> ()
      | _ -> Alcotest.fail "row missing from its partition");
      let other = (p + 1) mod partitions in
      match
        Ei_mcas.Store.invoke store ~partition:other
          (Ei_mcas.Ado.Lookup (Iotta.key_of_row r))
      with
      | Ei_mcas.Ado.Found None -> ()
      | _ -> Alcotest.fail "row leaked across partitions")
    rows;
  let total =
    Array.fold_left (fun a t -> a + Ei_mcas.Log_table.row_count t) 0 tables
  in
  Alcotest.(check int) "all rows stored once" (Array.length rows) total

let test_mcas_index_variants () =
  (* The same trace through every index plugged into the table. *)
  let rows = Iotta.generate ~rows:3_000 ~objects:500 () in
  List.iter
    (fun kind ->
      let table = Ei_mcas.Log_table.create ~index_kind:kind () in
      Array.iter (Ei_mcas.Log_table.ingest table) rows;
      Array.iter
        (fun r ->
          match Ei_mcas.Log_table.lookup table (Iotta.key_of_row r) with
          | Some row when row = r -> ()
          | _ -> Alcotest.failf "lost row under %s" (Registry.kind_name kind))
        rows)
    [ Registry.Stx; Registry.Seqtree 128; Registry.Hot ]

let () =
  Alcotest.run "ei_workload_mcas"
    [
      ( "iotta",
        [
          Alcotest.test_case "trace shape" `Quick test_iotta_shape;
          Alcotest.test_case "deterministic" `Quick test_iotta_deterministic;
        ] );
      ("fig1", [ Alcotest.test_case "daily volumes" `Quick test_daily_volumes ]);
      ( "ycsb",
        Alcotest.test_case "load phase" `Quick test_ycsb_load
        :: Alcotest.test_case "key uniqueness" `Quick test_ycsb_key_uniqueness
        :: ycsb_matrix );
      ( "mcas",
        [
          Alcotest.test_case "kv pool" `Quick test_mcas_kv;
          Alcotest.test_case "log table ado" `Quick test_mcas_log_table;
          Alcotest.test_case "partitioned ado engines" `Quick test_mcas_partitioned;
          Alcotest.test_case "index variants" `Quick test_mcas_index_variants;
        ] );
    ]
