(* Edge-case battery across the whole stack:
   - wide keys (> 32 bytes) that force 2-byte BlindiBits entries — a
     code path the main grids (8/16/30-byte keys) never touch;
   - keys differing only in their very last bit (maximum discriminating
     bit values, including 255, the 1-byte boundary);
   - node capacities above 256 (2-byte SubTrie subtree sizes);
   - empty and single-key indexes, zero-length scans, scans starting
     beyond the maximum key;
   - elasticity oscillation resistance around the thresholds;
   - non-default leaf capacities for the elastic tree. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Table = Ei_storage.Table
module Seqtree = Ei_blindi.Seqtree
module Subtrie = Ei_blindi.Subtrie
module Stringtrie = Ei_blindi.Stringtrie
module Btree = Ei_btree.Btree
module Policy = Ei_btree.Policy
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Elasticity = Ei_core.Elasticity
module Elastic = Ei_core.Elastic_btree

(* --- Wide keys: 2-byte discriminating-bit entries ------------------- *)

let test_wide_keys () =
  (* 40-byte keys have 320 bit positions: BlindiBits entries need 2
     bytes.  Keys share a 39-byte prefix so every discriminating bit is
     above 255. *)
  let key_len = 40 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let mk i =
    let b = Bytes.make key_len '\x11' in
    Bytes.set b (key_len - 1) (Char.chr i);
    Bytes.unsafe_to_string b
  in
  let keys = Array.init 200 mk in
  let node = Seqtree.create ~key_len ~capacity:256 ~levels:3 ~breathing:2 () in
  Array.iter
    (fun k ->
      let tid = Table.append table k in
      match Seqtree.insert node ~load k tid with
      | Seqtree.Inserted -> ()
      | _ -> Alcotest.fail "wide-key insert failed")
    keys;
  Seqtree.check_invariants node ~load;
  Array.iter
    (fun k -> if Seqtree.find node ~load k = None then Alcotest.fail "wide key lost")
    keys;
  (* Discriminating bits really are above one byte. *)
  Alcotest.(check int) "bits width" 2
    (Ei_blindi.Bitsarr.width_for_bits (key_len * 8));
  (* Same battery through the full B+-tree with every blind leaf kind. *)
  List.iter
    (fun policy ->
      let table = Table.create ~key_len () in
      let tree = Btree.create ~key_len ~load:(Table.loader table) ~policy () in
      Array.iter
        (fun k -> ignore (Btree.insert tree k (Table.append table k)))
        keys;
      Btree.check_invariants tree;
      Array.iter
        (fun k -> if Btree.find tree k = None then Alcotest.fail "lost in tree")
        keys;
      (* Remove half, re-check. *)
      Array.iteri (fun i k -> if i mod 2 = 0 then ignore (Btree.remove tree k)) keys;
      Btree.check_invariants tree)
    [
      Policy.all_seqtree ~capacity:64 ();
      Policy.all_subtrie ~capacity:64 ();
      Policy.all_stringtrie ~capacity:64 ();
    ]

let test_last_bit_boundary () =
  (* 32-byte keys: the last bit is position 255 — the maximum value a
     1-byte BlindiBits entry can hold. *)
  let key_len = 32 in
  Alcotest.(check int) "1-byte entries at 256 bits" 1
    (Ei_blindi.Bitsarr.width_for_bits (key_len * 8));
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let base = String.make key_len '\xAA' in
  let flip_last s =
    let b = Bytes.of_string s in
    Bytes.set b (key_len - 1) (Char.chr (Char.code (Bytes.get b (key_len - 1)) lxor 1));
    Bytes.unsafe_to_string b
  in
  let k0 = base and k1 = flip_last base in
  Alcotest.(check (option int)) "first diff bit is 255" (Some 255)
    (Key.first_diff_bit k0 k1);
  let node = Seqtree.create ~key_len ~capacity:4 ~levels:1 ~breathing:0 () in
  let t0 = Table.append table k0 and t1 = Table.append table k1 in
  ignore (Seqtree.insert node ~load k0 t0);
  ignore (Seqtree.insert node ~load k1 t1);
  Seqtree.check_invariants node ~load;
  Alcotest.(check (option int)) "find k0" (Some t0) (Seqtree.find node ~load k0);
  Alcotest.(check (option int)) "find k1" (Some t1) (Seqtree.find node ~load k1)

(* --- Large node capacities ------------------------------------------ *)

let test_capacity_300 () =
  (* Above 256: SubTrie subtree sizes and StringTrie child slots need two
     bytes.  Run the full random battery at capacity 300. *)
  let key_len = 8 in
  List.iter
    (fun policy ->
      let table = Table.create ~key_len () in
      let tree = Btree.create ~key_len ~load:(Table.loader table) ~policy () in
      let rng = Rng.stream seed 55 in
      let seen = Hashtbl.create 512 in
      let keys =
        Array.init 2_000 (fun _ ->
            let rec fresh () =
              let k = Key.random rng key_len in
              if Hashtbl.mem seen k then fresh ()
              else (Hashtbl.add seen k (); k)
            in
            fresh ())
      in
      Array.iter (fun k -> ignore (Btree.insert tree k (Table.append table k))) keys;
      Btree.check_invariants tree;
      Array.iter
        (fun k -> if Btree.find tree k = None then Alcotest.fail "lost at cap 300")
        keys;
      Array.iteri (fun i k -> if i mod 3 <> 0 then ignore (Btree.remove tree k)) keys;
      Btree.check_invariants tree)
    [
      Policy.all_seqtree ~levels:4 ~capacity:300 ();
      Policy.all_subtrie ~capacity:300 ();
      Policy.all_stringtrie ~capacity:300 ();
    ]

(* --- Degenerate sizes ------------------------------------------------ *)

let every_kind =
  [
    Registry.Stx;
    Registry.Seqtree 32;
    Registry.Subtrie 32;
    Registry.Stringtrie 32;
    Registry.Prefix;
    Registry.Elastic (Elasticity.default_config ~size_bound:10_000);
    Registry.Hot;
    Registry.Art;
    Registry.Skiplist;
    Registry.Hybrid 0.1;
  ]

let test_empty_and_single () =
  List.iter
    (fun kind ->
      let table = Table.create ~key_len:8 () in
      let index = Registry.make ~key_len:8 ~load:(Table.loader table) kind in
      let name = Registry.kind_name kind in
      (* Empty index. *)
      if index.Index_ops.find (Key.of_int 7) <> None then
        Alcotest.failf "%s: find on empty" name;
      if index.Index_ops.remove (Key.of_int 7) then
        Alcotest.failf "%s: remove on empty" name;
      if index.Index_ops.scan (Key.of_int 0) 10 <> 0 then
        Alcotest.failf "%s: scan on empty" name;
      if index.Index_ops.scan (Key.of_int 0) 0 <> 0 then
        Alcotest.failf "%s: zero-length scan" name;
      (* Single key. *)
      let k = Key.of_int 42 in
      let tid = Table.append table k in
      if not (index.Index_ops.insert k tid) then Alcotest.failf "%s: insert" name;
      if index.Index_ops.insert k tid then Alcotest.failf "%s: dup" name;
      if index.Index_ops.find k <> Some tid then Alcotest.failf "%s: find" name;
      (* Scan starting beyond the only key. *)
      if index.Index_ops.scan (Key.of_int 100) 5 <> 0 then
        Alcotest.failf "%s: scan past max" name;
      if index.Index_ops.scan (Key.of_int 0) 5 <> 1 then
        Alcotest.failf "%s: scan from min" name;
      (* Remove back to empty and reinsert. *)
      if not (index.Index_ops.remove k) then Alcotest.failf "%s: remove" name;
      if index.Index_ops.count () <> 0 then Alcotest.failf "%s: count" name;
      if not (index.Index_ops.insert k tid) then Alcotest.failf "%s: reinsert" name)
    every_kind

(* --- Elasticity oscillation resistance ------------------------------- *)

let test_no_oscillation () =
  (* Insert/remove cycling exactly around the shrink threshold: the
     hysteresis band must keep the state-transition count far below the
     number of crossings. *)
  let table = Table.create ~key_len:8 () in
  let config = Elasticity.default_config ~size_bound:60_000 in
  let tree = Elastic.create ~key_len:8 ~load:(Table.loader table) config () in
  let rng = Rng.stream seed 2 in
  let keys = Array.init 4_000 (fun _ -> Key.random rng 8) in
  let tids = Array.map (Table.append table) keys in
  (* Fill to just past the shrink point. *)
  Array.iteri (fun i k -> ignore (Elastic.insert tree k tids.(i))) keys;
  let cycles = 60 in
  for _ = 1 to cycles do
    (* Remove and reinsert a 10% slice: memory wobbles around the
       threshold. *)
    for i = 0 to (Array.length keys / 10) - 1 do
      ignore (Elastic.remove tree keys.(i))
    done;
    for i = 0 to (Array.length keys / 10) - 1 do
      ignore (Elastic.insert tree keys.(i) tids.(i))
    done
  done;
  Elastic.check_invariants tree;
  (* Without hysteresis this could transition ~2x per cycle. *)
  if Elastic.transitions tree > cycles then
    Alcotest.failf "oscillation: %d transitions in %d cycles"
      (Elastic.transitions tree) cycles

(* --- Non-default leaf capacities -------------------------------------- *)

let test_custom_leaf_capacity () =
  List.iter
    (fun leaf_capacity ->
      let table = Table.create ~key_len:8 () in
      let config = Elasticity.default_config ~size_bound:50_000 in
      let tree =
        Elastic.create ~leaf_capacity ~key_len:8 ~load:(Table.loader table)
          config ()
      in
      let rng = Rng.create leaf_capacity in
      for _ = 1 to 8_000 do
        let k = Key.random rng 8 in
        ignore (Elastic.insert tree k (Table.append table k))
      done;
      Elastic.check_invariants tree;
      Alcotest.(check bool)
        (Printf.sprintf "leaf capacity %d engaged elasticity" leaf_capacity)
        true
        (Elastic.compact_leaves tree > 0))
    [ 8; 32; 64 ]

(* --- Adversarial key patterns ----------------------------------------- *)

let test_dense_then_sparse () =
  (* Dense low range and sparse high range in one tree: deep and shallow
     trie regions side by side. *)
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let tree =
    Btree.create ~key_len:8 ~load ~policy:(Policy.all_seqtree ~capacity:64 ()) ()
  in
  let keys =
    Array.init 1_000 (fun i -> Key.of_int i)
    |> Array.append
         (Array.init 1_000 (fun i -> Key.of_int64 (Int64.shift_left (Int64.of_int (i + 1)) 40)))
  in
  Array.iter (fun k -> ignore (Btree.insert tree k (Table.append table k))) keys;
  Btree.check_invariants tree;
  Array.iter
    (fun k -> if Btree.find tree k = None then Alcotest.fail "mixed-density key lost")
    keys;
  (* Scan across the dense/sparse boundary. *)
  let got =
    Btree.fold_range tree ~start:(Key.of_int 995) ~n:10
      (fun acc k _ -> Key.to_int64 k :: acc)
      []
  in
  Alcotest.(check int) "scan crosses boundary" 10 (List.length got)

let () =
  Alcotest.run "ei_edge"
    [
      ( "wide-keys",
        [
          Alcotest.test_case "40-byte keys (2-byte bit entries)" `Quick test_wide_keys;
          Alcotest.test_case "last-bit boundary (bit 255)" `Quick test_last_bit_boundary;
        ] );
      ( "capacities",
        [
          Alcotest.test_case "capacity 300 (2-byte aux entries)" `Quick test_capacity_300;
          Alcotest.test_case "custom elastic leaf capacities" `Quick
            test_custom_leaf_capacity;
        ] );
      ( "degenerate",
        [ Alcotest.test_case "empty/single on every index" `Quick test_empty_and_single ] );
      ( "elasticity",
        [ Alcotest.test_case "no oscillation at threshold" `Quick test_no_oscillation ] );
      ( "adversarial",
        [ Alcotest.test_case "dense + sparse regions" `Quick test_dense_then_sparse ] );
    ]
