(* QCheck property tests over the core data structures and invariants.
   Unlike the seeded random-ops trials elsewhere in the suite, these use
   QCheck generators with shrinking, so a failing case minimises to a
   small operation sequence.

   Operations draw keys from a small integer pool to maximise collisions
   (duplicate inserts, removes of absent keys, re-insertions). *)

module Key = Ei_util.Key
module Table = Ei_storage.Table
module Seqtree = Ei_blindi.Seqtree
module Bitsarr = Ei_blindi.Bitsarr
module Btree = Ei_btree.Btree
module Policy = Ei_btree.Policy
module Radix = Ei_baselines.Radix
module Skiplist = Ei_baselines.Skiplist
module Elasticity = Ei_core.Elasticity

module Smap = Map.Make (String)

(* An operation over a pool of [pool_size] possible keys. *)
type op = Insert of int | Remove of int | Find of int | Scan of int * int

let op_gen pool_size =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun i -> Insert i) (int_bound (pool_size - 1)));
        (3, map (fun i -> Remove i) (int_bound (pool_size - 1)));
        (2, map (fun i -> Find i) (int_bound (pool_size - 1)));
        (1, map2 (fun i n -> Scan (i, 1 + n)) (int_bound (pool_size - 1)) (int_bound 20));
      ])

let print_op = function
  | Insert i -> Printf.sprintf "Insert %d" i
  | Remove i -> Printf.sprintf "Remove %d" i
  | Find i -> Printf.sprintf "Find %d" i
  | Scan (i, n) -> Printf.sprintf "Scan (%d,%d)" i n

let ops_arbitrary ?(pool = 64) n =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_op l))
    QCheck.Gen.(list_size (int_bound n) (op_gen pool))

(* Key pool: spread the small ints so neighbouring pool entries differ in
   interesting bit positions. *)
let key_of_pool i = Key.of_int (i * 0x9E3779B9)

(* Dense pool: consecutive even integers, so keys share long prefixes and
   discriminating bits sit near the end of the key. *)
let dense_key_of_pool i = Key.of_int (2 * i)

(* ------------------------------------------------------------------ *)
(* Generic: apply ops to an index and a model, checking every result.  *)

type driver = {
  d_insert : string -> int -> bool;
  d_remove : string -> bool;
  d_find : string -> int option;
  d_scan : (string -> int -> (string * int) list) option;
  d_check : unit -> unit;
}

let agree_with_model ?(key_of = key_of_pool) driver ops =
  let table_tids = Hashtbl.create 64 in
  let model = ref Smap.empty in
  let tid_counter = ref 0 in
  List.for_all
    (fun op ->
      let ok =
        match op with
        | Insert i ->
          let k = key_of i in
          let tid =
            match Hashtbl.find_opt table_tids k with
            | Some t -> t
            | None ->
              let t = !tid_counter in
              incr tid_counter;
              Hashtbl.add table_tids k t;
              t
          in
          let expect = not (Smap.mem k !model) in
          if expect then model := Smap.add k tid !model;
          driver.d_insert k tid = expect
        | Remove i ->
          let k = key_of i in
          let expect = Smap.mem k !model in
          model := Smap.remove k !model;
          driver.d_remove k = expect
        | Find i ->
          let k = key_of i in
          driver.d_find k = Smap.find_opt k !model
        | Scan (i, n) -> (
          let k = key_of i in
          match driver.d_scan with
          | None -> true
          | Some scan ->
            let got = scan k n in
            let expect =
              Smap.to_seq !model
              |> Seq.filter (fun (k', _) -> Key.compare k' k >= 0)
              |> Seq.take n |> List.of_seq
            in
            got = expect)
      in
      driver.d_check ();
      ok)
    ops

(* ------------------------------------------------------------------ *)
(* Drivers.                                                            *)

(* The table must pre-register every pool key so compact nodes can load
   them; tids are the pool positions. *)
let seqtree_driver ~levels ~breathing () =
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let node = Seqtree.create ~key_len:8 ~capacity:64 ~levels ~breathing () in
  {
    d_insert =
      (fun k tid ->
        (* tids are assigned in increasing order, so this appends the
           current key exactly when it is first seen. *)
        while Table.length table <= tid do
          ignore (Table.append table k)
        done;
        match Seqtree.insert node ~load k tid with
        | Seqtree.Inserted -> true
        | Seqtree.Duplicate -> false
        | Seqtree.Full -> true (* capacity 64 > pool; unreachable *));
    d_remove =
      (fun k ->
        match Seqtree.remove node ~load k with
        | Seqtree.Removed -> true
        | Seqtree.Not_present -> false);
    d_find = (fun k -> Seqtree.find node ~load k);
    d_scan = None;
    d_check = (fun () -> Seqtree.check_invariants node ~load);
  }

let btree_driver policy =
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let tree = Btree.create ~key_len:8 ~load ~policy () in
  let registered = Hashtbl.create 64 in
  let reg k tid =
    if not (Hashtbl.mem registered tid) then begin
      Hashtbl.add registered tid ();
      (* tid order equals append order by construction in the model. *)
      while Table.length table <= tid do
        ignore (Table.append table k)
      done
    end
  in
  {
    d_insert =
      (fun k tid ->
        reg k tid;
        Btree.insert tree k tid);
    d_remove = (fun k -> Btree.remove tree k);
    d_find = (fun k -> Btree.find tree k);
    d_scan =
      Some
        (fun k n ->
          List.rev
            (Btree.fold_range tree ~start:k ~n
               (fun acc k' tid -> (k', tid) :: acc)
               []));
    d_check = (fun () -> Btree.check_invariants tree);
  }

let radix_driver ~store_keys () =
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let tree = Radix.create ~store_keys ~key_len:8 ~load () in
  let registered = Hashtbl.create 64 in
  let reg k tid =
    if not (Hashtbl.mem registered tid) then begin
      Hashtbl.add registered tid ();
      while Table.length table <= tid do
        ignore (Table.append table k)
      done
    end
  in
  {
    d_insert =
      (fun k tid ->
        reg k tid;
        Radix.insert tree k tid);
    d_remove = (fun k -> Radix.remove tree k);
    d_find = (fun k -> Radix.find tree k);
    d_scan =
      Some
        (fun k n ->
          List.rev
            (Radix.fold_range tree ~start:k ~n
               (fun acc k' tid -> (k', tid) :: acc)
               []));
    d_check = (fun () -> Radix.check_invariants tree);
  }

let hybrid_driver ~merge_ratio () =
  let table = Table.create ~key_len:8 () in
  let tree =
    Ei_baselines.Hybrid.create ~merge_ratio ~key_len:8
      ~load:(Table.loader table) ()
  in
  let registered = Hashtbl.create 64 in
  let reg k tid =
    if not (Hashtbl.mem registered tid) then begin
      Hashtbl.add registered tid ();
      while Table.length table <= tid do
        ignore (Table.append table k)
      done
    end
  in
  {
    d_insert =
      (fun k tid ->
        reg k tid;
        Ei_baselines.Hybrid.insert tree k tid);
    d_remove = (fun k -> Ei_baselines.Hybrid.remove tree k);
    d_find = (fun k -> Ei_baselines.Hybrid.find tree k);
    d_scan =
      Some
        (fun k n ->
          List.rev
            (Ei_baselines.Hybrid.fold_range tree ~start:k ~n
               (fun acc k' tid -> (k', tid) :: acc)
               []));
    d_check = (fun () -> Ei_baselines.Hybrid.check_invariants tree);
  }

let elastic_skiplist_driver ~size_bound () =
  let table = Table.create ~key_len:8 () in
  let tree =
    Ei_core.Elastic_skiplist.create ~key_len:8 ~load:(Table.loader table)
      (Ei_core.Elastic_skiplist.default_config ~size_bound)
      ()
  in
  let registered = Hashtbl.create 64 in
  let reg k tid =
    if not (Hashtbl.mem registered tid) then begin
      Hashtbl.add registered tid ();
      while Table.length table <= tid do
        ignore (Table.append table k)
      done
    end
  in
  {
    d_insert =
      (fun k tid ->
        reg k tid;
        Ei_core.Elastic_skiplist.insert tree k tid);
    d_remove = (fun k -> Ei_core.Elastic_skiplist.remove tree k);
    d_find = (fun k -> Ei_core.Elastic_skiplist.find tree k);
    d_scan =
      Some
        (fun k n ->
          List.rev
            (Ei_core.Elastic_skiplist.fold_range tree ~start:k ~n
               (fun acc k' tid -> (k', tid) :: acc)
               []));
    d_check = (fun () -> Ei_core.Elastic_skiplist.check_invariants tree);
  }

let skiplist_driver () =
  let tree = Skiplist.create ~key_len:8 () in
  {
    d_insert = (fun k tid -> Skiplist.insert tree k tid);
    d_remove = (fun k -> Skiplist.remove tree k);
    d_find = (fun k -> Skiplist.find tree k);
    d_scan =
      Some
        (fun k n ->
          List.rev
            (Skiplist.fold_range tree ~start:k ~n
               (fun acc k' tid -> (k', tid) :: acc)
               []));
    d_check = (fun () -> Skiplist.check_invariants tree);
  }

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

let prop_seqtree =
  QCheck.Test.make ~name:"seqtree agrees with model (levels 3, breathing 2)"
    ~count:300 (ops_arbitrary ~pool:48 120)
    (fun ops -> agree_with_model (seqtree_driver ~levels:3 ~breathing:2 ()) ops)

let prop_seqtrie =
  QCheck.Test.make ~name:"pure seqtrie agrees with model (levels 0)" ~count:300
    (ops_arbitrary ~pool:48 120)
    (fun ops -> agree_with_model (seqtree_driver ~levels:0 ~breathing:0 ()) ops)

let prop_btree_stx =
  QCheck.Test.make ~name:"stx btree agrees with model" ~count:200
    (ops_arbitrary 150)
    (fun ops -> agree_with_model (btree_driver Policy.stx) ops)

let prop_btree_seqtree =
  QCheck.Test.make ~name:"stx-seqtree btree agrees with model" ~count:200
    (ops_arbitrary 150)
    (fun ops ->
      agree_with_model (btree_driver (Policy.all_seqtree ~capacity:32 ())) ops)

let prop_btree_elastic =
  QCheck.Test.make ~name:"elastic btree agrees with model" ~count:200
    (ops_arbitrary 150)
    (fun ops ->
      let e =
        Elasticity.create ~std_capacity:16
          (Elasticity.default_config ~size_bound:2_000)
      in
      agree_with_model (btree_driver (Elasticity.policy e)) ops)

let prop_radix_hot =
  QCheck.Test.make ~name:"radix (hot mode) agrees with model" ~count:200
    (ops_arbitrary 150)
    (fun ops -> agree_with_model (radix_driver ~store_keys:false ()) ops)

let prop_radix_art =
  QCheck.Test.make ~name:"radix (art mode) agrees with model" ~count:200
    (ops_arbitrary 150)
    (fun ops -> agree_with_model (radix_driver ~store_keys:true ()) ops)

let prop_skiplist =
  QCheck.Test.make ~name:"skiplist agrees with model" ~count:200
    (ops_arbitrary 150)
    (fun ops -> agree_with_model (skiplist_driver ()) ops)

let prop_seqtree_dense =
  QCheck.Test.make ~name:"seqtree agrees with model on dense prefixes"
    ~count:300 (ops_arbitrary ~pool:48 120)
    (fun ops ->
      agree_with_model ~key_of:dense_key_of_pool
        (seqtree_driver ~levels:3 ~breathing:2 ())
        ops)

let prop_btree_elastic_dense =
  QCheck.Test.make ~name:"elastic btree agrees with model on dense prefixes"
    ~count:200 (ops_arbitrary 150)
    (fun ops ->
      let e =
        Elasticity.create ~std_capacity:16
          (Elasticity.default_config ~size_bound:2_000)
      in
      agree_with_model ~key_of:dense_key_of_pool (btree_driver (Elasticity.policy e))
        ops)

let prop_radix_dense =
  QCheck.Test.make ~name:"radix agrees with model on dense prefixes" ~count:200
    (ops_arbitrary 150)
    (fun ops ->
      agree_with_model ~key_of:dense_key_of_pool (radix_driver ~store_keys:false ())
        ops)

let prop_hybrid =
  QCheck.Test.make ~name:"hybrid index agrees with model (eager merges)"
    ~count:200 (ops_arbitrary 150)
    (fun ops -> agree_with_model (hybrid_driver ~merge_ratio:0.05 ()) ops)

let prop_elastic_skiplist =
  QCheck.Test.make ~name:"elastic skiplist agrees with model (tiny bound)"
    ~count:200 (ops_arbitrary 150)
    (fun ops -> agree_with_model (elastic_skiplist_driver ~size_bound:800 ()) ops)

let prop_btree_gapped =
  QCheck.Test.make ~name:"gapped btree agrees with model" ~count:200
    (ops_arbitrary 150)
    (fun ops -> agree_with_model (btree_driver (Policy.all_gapped ())) ops)

let prop_btree_gapped_dense =
  QCheck.Test.make ~name:"gapped btree agrees with model on dense prefixes"
    ~count:200 (ops_arbitrary 150)
    (fun ops ->
      agree_with_model ~key_of:dense_key_of_pool
        (btree_driver (Policy.all_gapped ()))
        ops)

(* --- Gapped leaf vs standard leaf ------------------------------------- *)

(* Differential: the gapped leaf is behaviourally identical to the
   packed standard leaf at equal capacity — same insert/remove results
   (including [Full], since both fill at [capacity] live entries), same
   lookups, same positional view in key order. *)
let prop_gapped_leaf =
  let module Std_leaf = Ei_btree.Std_leaf in
  let module Gapped = Ei_btree.Gapped_leaf in
  QCheck.Test.make ~name:"gapped leaf matches std leaf" ~count:400
    (ops_arbitrary ~pool:24 120)
    (fun ops ->
      let std = Std_leaf.create ~key_len:8 ~capacity:16 () in
      let gap = Gapped.create ~key_len:8 ~capacity:16 () in
      List.for_all
        (fun op ->
          let ok =
            match op with
            | Insert i ->
              let k = key_of_pool i in
              Std_leaf.insert std k i = Gapped.insert gap k i
            | Remove i ->
              let k = key_of_pool i in
              Std_leaf.remove std k = Gapped.remove gap k
            | Find i ->
              let k = key_of_pool i in
              Std_leaf.find std k = Gapped.find gap k
              && Std_leaf.lower_bound std k = Gapped.lower_bound gap k
            | Scan (i, n) ->
              let k = key_of_pool i in
              let from = Std_leaf.lower_bound std k in
              let take l =
                List.rev
                  (l from (fun acc k' tid ->
                       if List.length acc < n then (k', tid) :: acc else acc)
                     [])
              in
              take (Std_leaf.fold_from std) = take (Gapped.fold_from gap)
          in
          Gapped.check_invariants gap;
          ok
          && Std_leaf.count std = Gapped.count gap
          && Std_leaf.is_full std = Gapped.is_full gap)
        ops)

(* --- multi_find equivalence ------------------------------------------- *)

module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops

(* [multi_find] must be bit-equivalent to a [find] loop on every
   backend, for batches with duplicate and missing keys, queried both
   mid-history (across leaf splits and elastic conversions) and at the
   end. *)
let multi_find_agrees mk (ops, queries) =
  let table = Table.create ~key_len:8 () in
  let ix = mk table in
  let tids = Hashtbl.create 64 in
  let apply op =
    match op with
    | Insert i ->
      let k = key_of_pool i in
      let tid =
        match Hashtbl.find_opt tids k with
        | Some t -> t
        | None ->
          let t = Table.append table k in
          Hashtbl.add tids k t;
          t
      in
      ignore (ix.Index_ops.insert k tid)
    | Remove i -> ignore (ix.Index_ops.remove (key_of_pool i))
    | Find i -> ignore (ix.Index_ops.find (key_of_pool i))
    | Scan _ -> ()
  in
  let check () =
    (* queries range over twice the pool, so roughly half miss *)
    let keys = Array.of_list (List.map key_of_pool queries) in
    ix.Index_ops.multi_find keys = Array.map ix.Index_ops.find keys
  in
  let rec halves n = function
    | [] -> true
    | op :: rest ->
      apply op;
      if n = 0 then check () && halves (-1) rest else halves (n - 1) rest
  in
  halves (List.length ops / 2) ops && check ()

let prop_multi_find =
  let mk_plain kind table = Registry.make ~key_len:8 ~load:(Table.loader table) kind in
  let mk_olc kind table =
    let load =
      Ei_olc.Btree_olc.safe_loader ~key_len:8
        ~table_length:(fun () -> Table.length table)
        ~load:(Table.loader table)
    in
    Registry.make ~key_len:8 ~load kind
  in
  let backends =
    [
      ("stx", mk_plain Registry.Stx);
      ("gapped", mk_plain Registry.Gapped);
      ("seqtree", mk_plain (Registry.Seqtree 64));
      ( "elastic",
        mk_plain (Registry.Elastic (Elasticity.default_config ~size_bound:2_000)) );
      ("skiplist", mk_plain Registry.Skiplist);
      ("hot", mk_plain Registry.Hot);
      ("olc", mk_olc (Registry.Olc Ei_olc.Btree_olc.Olc_std));
      ( "olc-elastic",
        mk_olc
          (Registry.Olc
             (Ei_olc.Btree_olc.Olc_elastic
                (Ei_olc.Btree_olc.default_elastic_config ~size_bound:2_000))) );
    ]
  in
  List.map
    (fun (name, mk) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "multi_find = find loop (%s)" name)
        ~count:100
        QCheck.(
          pair (ops_arbitrary ~pool:64 200)
            (list_of_size (Gen.int_bound 80) (int_bound 127)))
        (multi_find_agrees mk))
    backends

(* --- Bitsarr ---------------------------------------------------------- *)

let prop_bitsarr =
  (* Insert/remove against a reference list, both widths. *)
  QCheck.Test.make ~name:"bitsarr insert/remove matches list model" ~count:300
    QCheck.(pair (oneofl [ 1; 2 ]) (small_list (pair small_nat small_nat)))
    (fun (width, ops) ->
      let cap = 40 in
      let arr = Bitsarr.create ~width ~capacity:cap in
      let model = ref [] in
      List.iter
        (fun (pos, v) ->
          let v = v land if width = 1 then 0xff else 0xffff in
          let n = List.length !model in
          if n < cap && pos <= n then begin
            Bitsarr.insert arr ~count:n pos v;
            let before, after =
              (List.filteri (fun i _ -> i < pos) !model,
               List.filteri (fun i _ -> i >= pos) !model)
            in
            model := before @ (v :: after)
          end
          else if n > 0 then begin
            let pos = pos mod n in
            Bitsarr.remove arr ~count:n pos;
            model := List.filteri (fun i _ -> i <> pos) !model
          end)
        ops;
      List.for_all2
        (fun i v -> Bitsarr.get arr i = v)
        (List.init (List.length !model) (fun i -> i))
        !model)

(* --- Memory model ------------------------------------------------------ *)

let prop_memmodel_monotone =
  QCheck.Test.make ~name:"seqtree size model monotone in capacity and slots"
    ~count:300
    QCheck.(triple (int_range 2 256) (int_range 0 7) (int_range 8 32))
    (fun (capacity, levels, key_len) ->
      let sz slots =
        Ei_storage.Memmodel.seqtree_bytes ~capacity ~key_len ~levels
          ~tid_slots:slots ~breathing:true
      in
      let s1 = sz 1 and s2 = sz capacity in
      s1 <= s2
      && Ei_storage.Memmodel.seqtree_bytes ~capacity:(2 * capacity) ~key_len
           ~levels ~tid_slots:1 ~breathing:true
         > Ei_storage.Memmodel.seqtree_bytes ~capacity ~key_len ~levels
             ~tid_slots:1 ~breathing:true)

let prop_elastic_requirement =
  (* §4 requirement: compact leaf of capacity 2n smaller than standard
     leaf of capacity n, for keys of 16 bytes and up. *)
  QCheck.Test.make ~name:"compact(2n) < std(n) for key_len >= 16" ~count:200
    QCheck.(pair (int_range 8 64) (int_range 16 64))
    (fun (n, key_len) ->
      Ei_storage.Memmodel.seqtree_bytes ~capacity:(2 * n) ~key_len ~levels:2
        ~tid_slots:(2 * n) ~breathing:false
      < Ei_storage.Memmodel.std_leaf_bytes ~capacity:n ~key_len)

(* --- Elasticity state machine ----------------------------------------- *)

let prop_state_machine =
  (* Arbitrary sequences of (bytes, compact-leaves) observations never
     reach an inconsistent state: Expanding requires having shrunk, and
     in Normal state there is no pressure above the shrink threshold. *)
  QCheck.Test.make ~name:"elasticity state machine sanity" ~count:300
    QCheck.(small_list (pair (int_bound 2000) (int_bound 10)))
    (fun observations ->
      let e =
        Elasticity.create ~std_capacity:16
          (Elasticity.default_config ~size_bound:1000)
      in
      let policy = Elasticity.policy e in
      List.for_all
        (fun (bytes, compact) ->
          let view = { Policy.bytes; compact_leaves = compact; items = 0 } in
          ignore (policy.Policy.on_underflow view ~current:Policy.Spec_std ~count:0);
          match Elasticity.state e with
          | Elasticity.Normal -> bytes < 900
          | Elasticity.Shrinking -> true
          | Elasticity.Expanding -> bytes < 900)
        observations)

let () =
  (* Seed QCheck's generator state from EI_SEED (default 0) so property
     runs are reproducible and re-rollable like the rest of the suite. *)
  let qt =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| Ei_util.Rng.env_seed ~default:0 |])
  in
  Alcotest.run "ei_properties"
    [
      ( "indexes-vs-model",
        [
          qt prop_seqtree;
          qt prop_seqtrie;
          qt prop_btree_stx;
          qt prop_btree_seqtree;
          qt prop_btree_elastic;
          qt prop_radix_hot;
          qt prop_radix_art;
          qt prop_skiplist;
          qt prop_hybrid;
          qt prop_elastic_skiplist;
          qt prop_seqtree_dense;
          qt prop_btree_elastic_dense;
          qt prop_radix_dense;
          qt prop_btree_gapped;
          qt prop_btree_gapped_dense;
        ] );
      ("gapped-leaf", [ qt prop_gapped_leaf ]);
      ("multi-find", List.map qt prop_multi_find);
      ("bitsarr", [ qt prop_bitsarr ]);
      ( "memory-model",
        [ qt prop_memmodel_monotone; qt prop_elastic_requirement ] );
      ("elasticity", [ qt prop_state_machine ]);
    ]
