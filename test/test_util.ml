(* Unit and property tests for ei_util: keys, RNG, Zipfian generator. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Zipf = Ei_util.Zipf

let check = Alcotest.check

(* --- Key encoding ------------------------------------------------- *)

let test_int_roundtrip () =
  List.iter
    (fun v -> check Alcotest.int "roundtrip" v (Key.to_int (Key.of_int v)))
    [ 0; 1; 255; 256; 65535; 1_000_000; max_int / 4 ]

let test_int_order () =
  let rng = Rng.stream seed 42 in
  for _ = 1 to 1000 do
    let a = Rng.next_int rng and b = Rng.next_int rng in
    let ka = Key.of_int a and kb = Key.of_int b in
    check Alcotest.int "order preserved" (compare a b)
      (let c = Key.compare ka kb in
       if c < 0 then -1 else if c > 0 then 1 else 0)
  done

let test_pair_order () =
  let k1 = Key.of_int_pair 1 999 and k2 = Key.of_int_pair 2 0 in
  check Alcotest.bool "hi component dominates" true (Key.compare k1 k2 < 0);
  let k3 = Key.of_int_pair 1 5 and k4 = Key.of_int_pair 1 6 in
  check Alcotest.bool "lo breaks ties" true (Key.compare k3 k4 < 0)

let test_bit () =
  (* 0x80 = bit 0 of byte 0 set. *)
  let k = "\x80\x01" in
  check Alcotest.int "msb" 1 (Key.bit k 0);
  check Alcotest.int "bit1" 0 (Key.bit k 1);
  check Alcotest.int "lsb of byte 1" 1 (Key.bit k 15);
  check Alcotest.int "bit 14" 0 (Key.bit k 14)

(* Naive reference for first_diff_bit. *)
let naive_first_diff a b =
  let n = 8 * String.length a in
  let rec loop i =
    if i >= n then None
    else if Key.bit a i <> Key.bit b i then Some i
    else loop (i + 1)
  in
  loop 0

let prop_first_diff =
  QCheck.Test.make ~name:"first_diff_bit matches naive scan" ~count:2000
    QCheck.(pair (string_of_size (Gen.return 8)) (string_of_size (Gen.return 8)))
    (fun (a, b) -> Key.first_diff_bit a b = naive_first_diff a b)

let prop_diff_orders =
  (* If a < b then at the first differing bit, a has 0 and b has 1. *)
  QCheck.Test.make ~name:"first differing bit orders keys" ~count:2000
    QCheck.(pair (string_of_size (Gen.return 6)) (string_of_size (Gen.return 6)))
    (fun (a, b) ->
      match Key.first_diff_bit a b with
      | None -> a = b
      | Some i ->
        if String.compare a b < 0 then Key.bit a i = 0 && Key.bit b i = 1
        else Key.bit a i = 1 && Key.bit b i = 0)

let sign c = if c < 0 then -1 else if c > 0 then 1 else 0

(* compare_fast reads keys a word at a time; exercise every length from
   0 to 32 so all word/tail-split combinations are covered, plus pairs
   sharing a random-length prefix (the case binary search hits most). *)
let prop_compare_fast =
  let gen =
    QCheck.Gen.(
      int_bound 32 >>= fun la ->
      int_bound 32 >>= fun lb ->
      string_size (return la) >>= fun a ->
      string_size (return lb) >>= fun b ->
      int_bound (min la lb) >>= fun p ->
      (* With probability 1/2, splice a shared prefix of length p. *)
      bool >|= fun share ->
      if share && p > 0 then (a, String.sub a 0 p ^ String.sub b p (lb - p))
      else (a, b))
  in
  QCheck.Test.make ~name:"compare_fast agrees with String.compare"
    ~count:20_000
    (QCheck.make
       ~print:(fun (a, b) ->
         Printf.sprintf "(%S, %S)" a b)
       gen)
    (fun (a, b) ->
      sign (Key.compare_fast a b) = sign (String.compare a b)
      && sign (Key.compare_fast b a) = sign (String.compare b a)
      && Key.compare_fast a a = 0)

(* Exhaustive corner: equal strings and single-bit differences at every
   byte position for every length 0-32. *)
let test_compare_fast_edges () =
  for len = 0 to 32 do
    let a = String.make len '\x7f' in
    check Alcotest.int (Printf.sprintf "equal len %d" len) 0
      (Key.compare_fast a a);
    for pos = 0 to len - 1 do
      let b = Bytes.of_string a in
      Bytes.set b pos '\x80';
      let b = Bytes.unsafe_to_string b in
      check Alcotest.int
        (Printf.sprintf "diff at %d of %d" pos len)
        (sign (String.compare a b))
        (sign (Key.compare_fast a b))
    done;
    (* Prefix relation: a is a strict prefix of a ^ "x". *)
    let ax = a ^ "x" in
    check Alcotest.int
      (Printf.sprintf "prefix len %d" len)
      (sign (String.compare a ax))
      (sign (Key.compare_fast a ax))
  done

(* --- RNG ----------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.stream seed 7 and b = Rng.stream seed 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.next_int a) (Rng.next_int b)
  done

let test_rng_bounds () =
  let rng = Rng.stream seed 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done

let test_rng_uniformish () =
  let rng = Rng.stream seed 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      if f < 0.08 || f > 0.12 then Alcotest.failf "bucket fraction %f" f)
    buckets

(* --- Zipf ----------------------------------------------------------- *)

let test_zipf_skew () =
  let rng = Rng.stream seed 5 in
  let z = Zipf.create 1000 in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Zipf.next z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* Rank 0 must dominate and roughly follow 1/k^0.99. *)
  check Alcotest.bool "rank 0 most popular" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(10));
  let f0 = float_of_int counts.(0) /. float_of_int n in
  if f0 < 0.05 || f0 > 0.25 then Alcotest.failf "rank-0 fraction %f" f0

let test_zipf_bounds () =
  let rng = Rng.stream seed 9 in
  let z = Zipf.create ~scramble:true 100 in
  for _ = 1 to 10_000 do
    let r = Zipf.next z rng in
    if r < 0 || r >= 100 then Alcotest.fail "zipf out of bounds"
  done

let test_latest () =
  let rng = Rng.stream seed 13 in
  let z = Zipf.create 1_000 in
  let hits_recent = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let r = Zipf.next_latest z rng ~max_item:499 in
    if r < 0 || r > 499 then Alcotest.fail "latest out of bounds";
    if r > 449 then incr hits_recent
  done;
  (* The newest 10% of items should receive the majority of accesses. *)
  check Alcotest.bool "latest skews recent" true (!hits_recent > n / 2)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ei_util"
    [
      ( "key",
        [
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
          Alcotest.test_case "int order" `Quick test_int_order;
          Alcotest.test_case "pair order" `Quick test_pair_order;
          Alcotest.test_case "bit access" `Quick test_bit;
          qt prop_first_diff;
          qt prop_diff_orders;
          qt prop_compare_fast;
          Alcotest.test_case "compare_fast edges" `Quick
            test_compare_fast_edges;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniform-ish" `Quick test_rng_uniformish;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "latest" `Quick test_latest;
        ] );
    ]
