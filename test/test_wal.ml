(* WAL test suite.

   a. Frame codec: qcheck round-trips plus *adversarial* rejection —
      every single-bit flip and every truncation of a frame must
      decode to Error (never raise, never return a wrong record).
   b. Writer/recovery units: clean close + recovery fidelity
      (contents, elastic bound, clean marker), rotation + checkpoint
      pruning, corrupt-newest-checkpoint fallback, and the two
      deterministic crash levers (torn batch tail, dropped page
      cache).
   c. Serve integration: a durable fleet stopped cleanly recovers
      byte-identical contents in a fresh process image (fresh Table,
      fresh parts); a crashing fleet under fault injection loses no
      acknowledged write across supervisor rebuild-from-disk.
   d. A mini durable chaos soak: report clean, restart check clean,
      and two equal-seed runs agree on the (narrowed) schedule
      digest.
   e. The ei_sim WAL crash scenarios survive schedule exploration. *)

module Key = Ei_util.Key
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Frame = Ei_wal.Frame
module Wal = Ei_wal.Wal
module Fault = Ei_fault.Fault
module Serve = Ei_shard.Serve
module Shard = Ei_shard.Shard
module Chaos = Ei_chaos.Chaos
module Olc = Ei_olc.Btree_olc
module Sim = Ei_sim.Sim
module Sched = Ei_sim.Sched

let fresh_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ei-test-wal-%d-%s" (Unix.getpid ()) name)
  in
  Wal.reset_dir d;
  d

let mk_part ?(bound = 1 lsl 20) table name =
  Registry.make ~name ~key_len:8 ~load:(Table.loader table)
    (Registry.Elastic (Ei_core.Elasticity.default_config ~size_bound:bound))

(* --- a. frame codec --------------------------------------------------- *)

let record_gen =
  QCheck.Gen.(
    let key = string_size ~gen:char (int_range 0 40) in
    let lsn = int_range 0 0x3FFF_FFFF in
    let tid = int_range 0 0xFFFFF in
    frequency
      [
        (3, map3 (fun lsn key tid -> Frame.Insert { lsn; key; tid }) lsn key tid);
        (2, map2 (fun lsn key -> Frame.Remove { lsn; key }) lsn key);
        (2, map3 (fun lsn key tid -> Frame.Update { lsn; key; tid }) lsn key tid);
        ( 1,
          map2
            (fun lsn bound -> Frame.Bound { lsn; bound })
            lsn (int_range 0 (1 lsl 30)) );
      ])

let record_arb = QCheck.make ~print:Frame.describe record_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"frame round-trips" ~count:500 record_arb (fun r ->
      let s = Frame.encode r in
      match Frame.decode s ~pos:0 with
      | Ok (r', n) -> r' = r && n = String.length s
      | Error _ -> false)

let prop_stream_roundtrip =
  QCheck.Test.make ~name:"frame stream round-trips" ~count:200
    QCheck.(make Gen.(list_size (int_bound 20) record_gen))
    (fun rs ->
      let b = Buffer.create 256 in
      List.iter (Frame.encode_into b) rs;
      let got, err = Frame.decode_all (Buffer.contents b) in
      got = rs && err = None)

(* Exhaustive adversarial sweeps over fixed vectors, via the property
   harness shared with the ei_net wire-codec suite (Codec_harness):
   deterministic, and CRC-32 guarantees detection of any single-bit
   error within a frame.  The WAL decoder works on a complete file
   image, so — unlike the incremental wire decoder — its only legal
   answer to damage is outright rejection. *)
let fixed_records =
  [
    Frame.Insert { lsn = 1; key = "k0000001"; tid = 7 };
    Frame.Remove { lsn = 2; key = String.make 8 '\xff' };
    Frame.Update { lsn = 77; key = "\x00\x01\x02\x03\x04\x05\x06\x07"; tid = 0 };
    Frame.Bound { lsn = 123456789; bound = 1 lsl 24 };
    Frame.Insert { lsn = 0; key = ""; tid = 0 };
  ]

let flip_bit = Codec_harness.flip_bit

let frame_verdict s =
  match Frame.decode s ~pos:0 with
  | Ok _ -> Codec_harness.Accepted
  | Error _ -> Codec_harness.Rejected

let rejected = function
  | Codec_harness.Rejected -> true
  | Codec_harness.Accepted | Codec_harness.Incomplete -> false

let test_bit_flips () =
  Codec_harness.check_bit_flips ~what:"wal frame" ~describe:Frame.describe
    ~encode:Frame.encode ~verdict:frame_verdict ~allowed:rejected
    fixed_records

let test_truncations () =
  Codec_harness.check_truncations ~what:"wal frame" ~describe:Frame.describe
    ~encode:Frame.encode ~verdict:frame_verdict ~allowed:rejected
    fixed_records

let test_length_lies () =
  Codec_harness.check_length_lies ~what:"wal frame" ~describe:Frame.describe
    ~encode:Frame.encode ~verdict:frame_verdict ~allowed:rejected
    fixed_records

let prop_random_flip =
  Codec_harness.prop_random_flip ~name:"random single-bit flip rejected"
    ~arb:record_arb ~encode:Frame.encode ~verdict:frame_verdict
    ~allowed:rejected

let test_torn_tail_decode () =
  let rs = fixed_records in
  let b = Buffer.create 256 in
  List.iter (Frame.encode_into b) rs;
  let whole = Buffer.contents b in
  let last = Frame.encode (List.nth rs (List.length rs - 1)) in
  let good = String.length whole - String.length last in
  (* cut anywhere inside the final frame: good prefix survives, and the
     reported truncation point is exactly where the last frame starts *)
  let cut = good + (String.length last / 2) in
  let got, err = Frame.decode_all (String.sub whole 0 cut) in
  Alcotest.(check int) "good prefix survives" (List.length rs - 1)
    (List.length got);
  match err with
  | Some (off, _) -> Alcotest.(check int) "torn offset" good off
  | None -> Alcotest.fail "torn tail went unreported"

(* --- b. writer / recovery units -------------------------------------- *)

(* Apply a deterministic mixed tape through a writer and a live part;
   returns (expected fingerprint, expected count) captured at close. *)
let run_tape w part table keys tids ~n =
  for i = 0 to n - 1 do
    Wal.log_insert w keys.(i) tids.(i);
    ignore (part.Index_ops.insert keys.(i) tids.(i));
    if i mod 5 = 3 then begin
      Wal.log_remove w keys.(i - 2);
      ignore (part.Index_ops.remove keys.(i - 2))
    end;
    if i mod 16 = 15 then Wal.commit w ~part
  done;
  Wal.log_bound w 4096;
  part.Index_ops.set_size_bound 4096;
  Wal.commit w ~part;
  ignore table

let recover_fresh ?faults cfg ~name =
  let t = Table.create ~key_len:8 () in
  let p = mk_part t name in
  let w, r =
    Wal.recover ?faults cfg ~shard:0
      ~restore:(fun ~tid ~key -> Table.restore_row t ~tid ~key)
      ~part:p
  in
  (w, r, p)

let test_basic_recovery () =
  let dir = fresh_dir "basic" in
  let cfg = { (Wal.default_config ~dir) with Wal.fsync_every = 1 } in
  let table = Table.create ~key_len:8 () in
  let part = mk_part table "wal-basic" in
  let n = 200 in
  let keys = Array.init n (fun i -> Key.of_int (i * 7919)) in
  let tids = Array.map (Table.append table) keys in
  let w, r0 = Wal.recover cfg ~shard:0 ~part in
  Alcotest.(check int) "fresh dir: nothing replayed" 0 r0.Wal.r_replayed;
  run_tape w part table keys tids ~n;
  Wal.close w;
  let fp = Index_ops.fingerprint part in
  let count = part.Index_ops.count () in
  let w2, r, p2 = recover_fresh cfg ~name:"wal-basic-rec" in
  Wal.close w2;
  Alcotest.(check bool) "clean marker honoured" true r.Wal.r_clean;
  Alcotest.(check int) "contents recovered bit-for-bit" fp
    (Index_ops.fingerprint p2);
  Alcotest.(check int) "count recovered" count (p2.Index_ops.count ());
  Alcotest.(check int) "elastic bound recovered" 4096 r.Wal.r_bound

let test_checkpoint_fallback () =
  let dir = fresh_dir "ckpt" in
  let cfg =
    {
      (Wal.default_config ~dir) with
      Wal.fsync_every = 1;
      checkpoint_every = 8;
      segment_bytes = 512;
      keep_checkpoints = 2;
    }
  in
  let table = Table.create ~key_len:8 () in
  let part = mk_part table "wal-ckpt" in
  let n = 300 in
  let keys = Array.init n (fun i -> Key.of_int (i * 104729)) in
  let tids = Array.map (Table.append table) keys in
  let w, _ = Wal.recover cfg ~shard:0 ~part in
  run_tape w part table keys tids ~n;
  Wal.close w;
  let fp = Index_ops.fingerprint part in
  let segs, ckpts, clean = Wal.inspect_shard ~dir ~shard:0 in
  Alcotest.(check bool) "clean marker" true clean;
  Alcotest.(check bool) "rotation happened" true (List.length segs > 1);
  Alcotest.(check int) "retention pruned to keep_checkpoints" 2
    (List.length ckpts);
  List.iter
    (fun c ->
      Alcotest.(check bool) "checkpoint validates" true (c.Wal.ci_error = None))
    ckpts;
  let w2, r, p2 = recover_fresh cfg ~name:"wal-ckpt-rec" in
  Wal.close w2;
  Alcotest.(check bool) "recovery used a checkpoint" true
    (r.Wal.r_ckpt_entries > 0);
  Alcotest.(check int) "contents recovered" fp (Index_ops.fingerprint p2);
  (* flip one byte mid-payload of the newest checkpoint's data file:
     recovery must reject it and fall back to the older generation *)
  let sdir = Filename.concat dir "shard0" in
  let dats =
    Sys.readdir sdir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 4
           && String.sub f 0 5 = "ckpt-"
           && Filename.check_suffix f ".dat")
    |> List.sort String.compare |> List.rev
  in
  let newest = Filename.concat sdir (List.hd dats) in
  let bytes = In_channel.with_open_bin newest In_channel.input_all in
  let mid = String.length bytes / 2 in
  Out_channel.with_open_bin newest (fun oc ->
      Out_channel.output_string oc (flip_bit bytes (mid * 8)));
  let w3, r3, p3 = recover_fresh cfg ~name:"wal-ckpt-fb" in
  Wal.close w3;
  Alcotest.(check bool) "corrupt newest skipped" true
    (r3.Wal.r_ckpt_fallbacks >= 1);
  Alcotest.(check int) "fallback still recovers contents" fp
    (Index_ops.fingerprint p3)

let test_crash_torn () =
  let dir = fresh_dir "torn" in
  let cfg = { (Wal.default_config ~dir) with Wal.fsync_every = 1 } in
  let table = Table.create ~key_len:8 () in
  let part = mk_part table "wal-torn-unit" in
  let keys = Array.init 23 (fun i -> Key.of_int i) in
  let tids = Array.map (Table.append table) keys in
  let w, _ = Wal.recover cfg ~shard:0 ~part in
  for i = 0 to 19 do
    Wal.log_insert w keys.(i) tids.(i);
    ignore (part.Index_ops.insert keys.(i) tids.(i))
  done;
  Wal.commit w ~part;
  for i = 20 to 22 do
    Wal.log_insert w keys.(i) tids.(i)
  done;
  (match Wal.crash_torn w with
  | _ -> Alcotest.fail "crash_torn returned"
  | exception Wal.Died _ -> ());
  let w2, r, p2 = recover_fresh cfg ~name:"wal-torn-rec" in
  Wal.close w2;
  Alcotest.(check int) "torn tail truncated" 1 r.Wal.r_torn;
  Alcotest.(check bool) "no clean marker" false r.Wal.r_clean;
  (* 20 committed + 2 complete frames of the torn batch; the 23rd frame
     lost its last bytes *)
  Alcotest.(check int) "recovered to the torn horizon" 22 r.Wal.r_last_lsn;
  Alcotest.(check int) "durable prefix intact" 22 (p2.Index_ops.count ())

let test_crash_unsynced () =
  let dir = fresh_dir "unsynced" in
  let cfg = { (Wal.default_config ~dir) with Wal.fsync_every = 2 } in
  let table = Table.create ~key_len:8 () in
  let part = mk_part table "wal-unsync-unit" in
  let keys = Array.init 30 (fun i -> Key.of_int i) in
  let tids = Array.map (Table.append table) keys in
  let w, _ = Wal.recover cfg ~shard:0 ~part in
  for c = 0 to 2 do
    for i = c * 10 to (c * 10) + 9 do
      Wal.log_insert w keys.(i) tids.(i);
      ignore (part.Index_ops.insert keys.(i) tids.(i))
    done;
    Wal.commit w ~part
  done;
  (* fsync_every = 2: commits 1 and 3 were not synced — the page cache
     holds records 21..30 *)
  Alcotest.(check int) "durable horizon at the synced commit" 20
    (Wal.durable_lsn w);
  (match Wal.crash_unsynced w with
  | _ -> Alcotest.fail "crash_unsynced returned"
  | exception Wal.Died _ -> ());
  let w2, r, p2 = recover_fresh cfg ~name:"wal-unsync-rec" in
  Wal.close w2;
  Alcotest.(check int) "recovered exactly the synced prefix" 20
    r.Wal.r_last_lsn;
  Alcotest.(check int) "unsynced records gone" 20 (p2.Index_ops.count ())

(* --- c. serve integration --------------------------------------------- *)

let test_serve_restart () =
  let dir = fresh_dir "serve" in
  let wal = Wal.default_config ~dir in
  let shards = 2 in
  let n = 500 in
  let mk_fleet () =
    let table = Table.create ~key_len:8 () in
    let parts =
      Array.init shards (fun i ->
          mk_part table (Printf.sprintf "serve-wal/%d" i))
    in
    (table, Shard.create parts)
  in
  let table, router = mk_fleet () in
  let keys = Array.init n (fun i -> Key.of_int (i * 31337)) in
  let tids = Array.map (Table.append table) keys in
  let serve =
    Serve.start ~wal
      ~wal_restore:(fun ~tid ~key -> Table.restore_row table ~tid ~key)
      router
  in
  ignore
    (Serve.exec serve
       (Array.init n (fun i -> Serve.Insert (keys.(i), tids.(i)))));
  ignore
    (Serve.exec serve
       (Array.init (n / 5) (fun i -> Serve.Remove keys.(i * 5))));
  Serve.stop serve;
  let live = Shard.count router in
  (* a fresh process image: new Table, new empty parts, same directory *)
  let table2, router2 = mk_fleet () in
  let serve2 =
    Serve.start ~wal
      ~wal_restore:(fun ~tid ~key -> Table.restore_row table2 ~tid ~key)
      router2
  in
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "clean shutdown marker seen" true r.Wal.r_clean)
    (Serve.wal_recoveries serve2);
  Alcotest.(check int) "count survives restart" live (Shard.count router2);
  let outs =
    Serve.exec serve2 (Array.init n (fun i -> Serve.Find keys.(i)))
  in
  Array.iteri
    (fun i out ->
      let want = if i mod 5 = 0 then -1 else tids.(i) in
      match out with
      | Serve.Applied tid when tid = want -> ()
      | _ -> Alcotest.failf "key %d wrong after restart" i)
    outs;
  Serve.stop serve2

let rec wait_healthy serve =
  if not (Serve.healthy serve) then begin
    Unix.sleepf 0.001;
    wait_healthy serve
  end

let test_serve_crash_rebuild_from_disk () =
  let dir = fresh_dir "serve-crash" in
  let wal = { (Wal.default_config ~dir) with Wal.checkpoint_every = 16 } in
  let shards = 2 in
  let n = 400 in
  let table = Table.create ~initial_capacity:(4 * n) ~key_len:8 () in
  let mk i = mk_part table (Printf.sprintf "crash-wal/%d" i) in
  let router = Shard.create (Array.init shards mk) in
  Fault.configure ~seed:11 [ ("serve.crash", 0.01) ];
  let serve =
    Serve.start
      ~supervisor:(Serve.default_supervisor ~table ~rebuild:mk)
      ~fault_prefix:"serve" ~timeout_s:0.2 ~wal
      ~wal_restore:(fun ~tid ~key -> Table.restore_row table ~tid ~key)
      router
  in
  let keys = Array.init n (fun i -> Key.of_int (i * 7919)) in
  let tids = Array.map (Table.append table) keys in
  for i = 0 to n - 1 do
    let acked = ref false in
    while not !acked do
      match (Serve.exec serve [| Serve.Insert (keys.(i), tids.(i)) |]).(0) with
      | Serve.Applied _ -> acked := true
      | Serve.Rejected -> ()
      | Serve.Timed_out -> wait_healthy serve
    done
  done;
  Fault.clear ();
  wait_healthy serve;
  let recoveries = Serve.recoveries serve in
  let lost = ref 0 in
  Array.iteri
    (fun i out ->
      match out with
      | Serve.Applied tid when tid = tids.(i) -> ()
      | _ -> incr lost)
    (Serve.exec serve (Array.init n (fun i -> Serve.Find keys.(i))));
  Serve.stop serve;
  Alcotest.(check int) "zero lost acknowledged writes" 0 !lost;
  Alcotest.(check bool) "crashes happened and rebuilt from disk" true
    (recoveries >= 1);
  Alcotest.(check int) "count reconciles" n (Shard.count router)

(* --- d. mini durable chaos soak --------------------------------------- *)

let test_chaos_wal () =
  let dir = fresh_dir "chaos" in
  let config =
    {
      (Chaos.default_config ~seed:123) with
      Chaos.scale = 0.05;
      plan = Chaos.default_wal_plan;
      wal_dir = Some dir;
    }
  in
  let r1 = Chaos.run config in
  let r2 = Chaos.run config in
  Alcotest.(check bool) "first durable soak ok" true (Chaos.ok r1);
  Alcotest.(check bool) "second durable soak ok" true (Chaos.ok r2);
  Alcotest.(check bool) "restart check ran" true r1.Chaos.wal;
  Alcotest.(check string) "equal seeds agree on the pure schedule"
    (Chaos.schedule_digest r1) (Chaos.schedule_digest r2)

(* --- e. sim crash scenarios ------------------------------------------- *)

let test_sim_wal_scenarios () =
  List.iter
    (fun name ->
      match Sim.scenario name with
      | None -> Alcotest.fail ("missing scenario " ^ name)
      | Some mk -> (
        match Sched.explore ~seed:3 ~rounds:12 mk with
        | None -> ()
        | Some f ->
          Alcotest.failf "%s failed (round %d): %s" name f.Sched.round
            f.Sched.error))
    [ "wal-torn"; "wal-fsync" ]

let () =
  let qt =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| Ei_util.Rng.env_seed ~default:0 |])
  in
  Alcotest.run "ei_wal"
    [
      ( "codec",
        [
          qt prop_roundtrip;
          qt prop_stream_roundtrip;
          qt prop_random_flip;
          Alcotest.test_case "every single-bit flip rejected" `Quick
            test_bit_flips;
          Alcotest.test_case "every truncation rejected" `Quick
            test_truncations;
          Alcotest.test_case "length-field lies rejected" `Quick
            test_length_lies;
          Alcotest.test_case "torn tail localised" `Quick test_torn_tail_decode;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "clean close round-trips" `Quick
            test_basic_recovery;
          Alcotest.test_case "rotation, checkpoints, corrupt fallback" `Quick
            test_checkpoint_fallback;
          Alcotest.test_case "torn batch tail" `Quick test_crash_torn;
          Alcotest.test_case "dropped page cache" `Quick test_crash_unsynced;
        ] );
      ( "serve",
        [
          Alcotest.test_case "restart from clean shutdown" `Quick
            test_serve_restart;
          Alcotest.test_case "supervisor rebuilds from disk" `Quick
            test_serve_crash_rebuild_from_disk;
        ] );
      ( "chaos",
        [ Alcotest.test_case "durable soak + digest" `Quick test_chaos_wal ] );
      ( "sim",
        [
          Alcotest.test_case "wal crash scenarios explored" `Quick
            test_sim_wal_scenarios;
        ] );
    ]
