(* Property test for the deep invariant sanitizer (ei_check): long
   random workloads against the elastic B+-tree with a size bound tight
   enough to force all three elasticity states, with [Check.run] fired
   through the [Check.wrap] hook every 1000 mutations.  The sanitizer
   must never report an [Error]-severity finding ([Advisory] occupancy
   findings are expected while shrinking/expanding).

   Three seeded trials of 36k phased ops each (grow-heavy, mixed churn,
   drain-heavy) put >= 100k operations through the wrapped index. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Table = Ei_storage.Table
module Elasticity = Ei_core.Elasticity
module Elastic = Ei_core.Elastic_btree
module Index_ops = Ei_harness.Index_ops
module Check = Ei_check.Check

let ops_per_phase = 12_000
let check_every = 1_000
let pool_size = 3_000

(* One trial: build an elastic tree under a 24 KB bound, wrap it, and
   drive [3 * ops_per_phase] operations whose insert/remove bias shifts
   per phase so the index grows past the bound (Normal -> Shrinking),
   then drains well below it (-> Expanding), then converges.  Returns
   [(error_findings, reports_seen, states_seen)]. *)
let run_trial seed =
  let table = Table.create ~key_len:8 () in
  let config = Elasticity.default_config ~size_bound:24_000 in
  let tree = Elastic.create ~key_len:8 ~load:(Table.loader table) config () in
  let ix = Index_ops.of_elastic "elastic" tree in
  let error_findings = ref [] in
  let reports = ref 0 in
  let on_report r =
    incr reports;
    if not (Check.ok r) then
      error_findings := Check.errors r @ !error_findings
  in
  let wrapped = Check.wrap ~every:check_every ~on_report ix in
  let rng = Rng.create seed in
  let pool = Array.init pool_size (fun _ -> Key.random rng 8) in
  let tid_of = Ei_util.Strtbl.create 256 in
  let tid_for k =
    match Ei_util.Strtbl.find_opt tid_of k with
    | Some tid -> tid
    | None ->
      let tid = Table.append table k in
      Ei_util.Strtbl.add tid_of k tid;
      tid
  in
  let states = Hashtbl.create 4 in
  let note_state () =
    Hashtbl.replace states (Elasticity.state_name (Elastic.state tree)) ()
  in
  note_state ();
  (* insert/remove percentage biases per phase; the remainder splits
     between updates and scans. *)
  let phases = [| (80, 5); (45, 35); (10, 75) |] in
  Array.iter
    (fun (ins, rem) ->
      for _ = 1 to ops_per_phase do
        let k = pool.(Rng.int rng pool_size) in
        let c = Rng.int rng 100 in
        if c < ins then ignore (wrapped.Index_ops.insert k (tid_for k))
        else if c < ins + rem then ignore (wrapped.Index_ops.remove k)
        else if c < ins + rem + 10 then
          ignore (wrapped.Index_ops.update k (tid_for k))
        else ignore (wrapped.Index_ops.scan_keys k 16 (fun _ -> ()));
        note_state ()
      done)
    phases;
  let final = Check.run ix in
  if not (Check.ok final) then
    error_findings := Check.errors final @ !error_findings;
  (!error_findings, !reports, states)

let prop_sanitizer_clean =
  QCheck.Test.make ~name:"sanitizer clean across elastic churn" ~count:3
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let errors, reports, states = run_trial seed in
      (match errors with
      | [] -> ()
      | f :: _ ->
        QCheck.Test.fail_reportf "sanitizer error (of %d): %s"
          (List.length errors)
          (Format.asprintf "%a" Check.pp_finding f));
      (* The periodic hook must actually have fired throughout the run. *)
      let expected_reports = 3 * ops_per_phase * 90 / 100 / check_every in
      if reports < expected_reports then
        QCheck.Test.fail_reportf "only %d periodic reports (expected >= %d)"
          reports expected_reports;
      (* The workload must have exercised every elasticity state. *)
      List.iter
        (fun s ->
          if not (Hashtbl.mem states s) then
            QCheck.Test.fail_reportf "state %s never reached" s)
        [ "normal"; "shrinking"; "expanding" ];
      true)

(* --- Sanitizer detects seeded corruption ----------------------------- *)

(* A sanitizer that never fires is vacuous: corrupt a tree's table
   bindings behind its back and require an Error finding. *)
let test_detects_corruption () =
  let table = Table.create ~key_len:8 () in
  let config = Elasticity.default_config ~size_bound:10_000 in
  let tree = Elastic.create ~key_len:8 ~load:(Table.loader table) config () in
  let rng = Rng.stream seed 7 in
  for _ = 1 to 4_000 do
    let k = Key.random rng 8 in
    ignore (Elastic.insert tree k (Table.append table k))
  done;
  (* Shrinking must hold compact leaves whose keys live only in the
     table; remapping the loader to garbage breaks key order. *)
  Alcotest.(check bool) "has compact leaves" true (Elastic.compact_leaves tree > 0);
  let corrupt_load tid = Key.of_int (tid * 0x9E3779B9 land 0xFFFF) in
  let intro = Ei_btree.Btree.introspect (Elastic.tree tree) in
  let findings =
    Array.fold_left
      (fun acc (leaf : Ei_btree.Leaf.t) ->
        match leaf.Ei_btree.Leaf.repr with
        | Ei_btree.Leaf.Seq node ->
          acc @ Check.check_seqtree ~load:corrupt_load node
        | _ -> acc)
      [] intro.Ei_btree.Btree.leaves
  in
  let is_error (f : Check.finding) =
    match f.Check.severity with Check.Error -> true | Check.Advisory -> false
  in
  Alcotest.(check bool) "corruption detected" true (List.exists is_error findings)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ei_check"
    [
      ("sanitizer", [ qt prop_sanitizer_clean ]);
      ( "detection",
        [ Alcotest.test_case "seeded corruption found" `Quick test_detects_corruption ] );
    ]
