(* B+-tree tests: every policy (STX, STX-SeqTree, STX-SubTrie) is driven
   through random operation sequences and compared against a Map
   reference model, with full structural invariant checks along the way.
   Range scans are compared against the model's sorted bindings. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Table = Ei_storage.Table
module Btree = Ei_btree.Btree
module Policy = Ei_btree.Policy

module Smap = Map.Make (String)

let mk_tree ~key_len ~policy () =
  let table = Table.create ~key_len () in
  let tree =
    Btree.create ~key_len ~leaf_capacity:16 ~inner_capacity:16
      ~load:(Table.loader table) ~policy ()
  in
  (table, tree)

(* Compare a range scan against the reference model. *)
let check_scan tree model rng key_len =
  let start = Key.random rng key_len in
  let n = 1 + Rng.int rng 30 in
  let got =
    List.rev
      (Btree.fold_range tree ~start ~n (fun acc k tid -> (k, tid) :: acc) [])
  in
  let expected =
    Smap.to_seq model
    |> Seq.filter (fun (k, _) -> Key.compare k start >= 0)
    |> Seq.take n |> List.of_seq
  in
  if got <> expected then
    Alcotest.failf "scan mismatch: got %d entries, expected %d"
      (List.length got) (List.length expected)

let random_ops ~key_len ~policy ~nops ~key_space ~check_every () =
  let table, tree = mk_tree ~key_len ~policy () in
  let rng = Rng.create (nops + key_space) in
  let model = ref Smap.empty in
  (* Key universe: a fixed pool so that removes and duplicate inserts hit
     existing keys often. *)
  let pool =
    Array.init key_space (fun i ->
        ignore i;
        Key.random rng key_len)
  in
  let tid_of = Hashtbl.create 256 in
  for step = 1 to nops do
    let k = pool.(Rng.int rng key_space) in
    let choice = Rng.int rng 100 in
    if choice < 55 then begin
      let tid =
        match Hashtbl.find_opt tid_of k with
        | Some tid -> tid
        | None ->
          let tid = Table.append table k in
          Hashtbl.add tid_of k tid;
          tid
      in
      let inserted = Btree.insert tree k tid in
      let expected = not (Smap.mem k !model) in
      if inserted <> expected then Alcotest.fail "insert result mismatch";
      if expected then model := Smap.add k tid !model
    end
    else if choice < 80 then begin
      let removed = Btree.remove tree k in
      let expected = Smap.mem k !model in
      if removed <> expected then Alcotest.fail "remove result mismatch";
      if expected then model := Smap.remove k !model
    end
    else if choice < 95 then begin
      match (Btree.find tree k, Smap.find_opt k !model) with
      | Some a, Some b -> if a <> b then Alcotest.fail "find tid mismatch"
      | None, None -> ()
      | Some _, None -> Alcotest.fail "found phantom key"
      | None, Some _ -> Alcotest.fail "lost key"
    end
    else check_scan tree !model rng key_len;
    if Btree.count tree <> Smap.cardinal !model then
      Alcotest.failf "count mismatch at step %d" step;
    if step mod check_every = 0 then Btree.check_invariants tree
  done;
  Btree.check_invariants tree;
  (* Full contents comparison. *)
  let collected = ref [] in
  Btree.iter tree (fun k tid -> collected := (k, tid) :: !collected);
  let got = List.rev !collected in
  let expected = Smap.bindings !model in
  if got <> expected then Alcotest.fail "final contents mismatch"

let policies =
  [
    ("stx", Policy.stx);
    ("seqtree32", Policy.all_seqtree ~capacity:32 ());
    ("seqtree128", Policy.all_seqtree ~capacity:128 ());
    ("seqtree128-nobreath", Policy.all_seqtree ~breathing:0 ~capacity:128 ());
    ("subtrie64", Policy.all_subtrie ~capacity:64 ());
    ("stringtrie64", Policy.all_stringtrie ~capacity:64 ());
    ("prefix", Policy.all_prefix ());
    ("bwtree", Policy.all_bw ());
  ]

let grid =
  List.concat_map
    (fun (pname, policy) ->
      List.map
        (fun key_len ->
          Alcotest.test_case
            (Printf.sprintf "%s k=%dB random-ops" pname key_len)
            `Quick
            (random_ops ~key_len ~policy ~nops:1200 ~key_space:400
               ~check_every:50))
        [ 8; 16 ])
    policies

let soak =
  [
    Alcotest.test_case "stx soak 8k ops" `Slow
      (random_ops ~key_len:8 ~policy:Policy.stx ~nops:8000 ~key_space:3000
         ~check_every:1000);
    Alcotest.test_case "seqtree128 soak 8k ops" `Slow
      (random_ops ~key_len:8
         ~policy:(Policy.all_seqtree ~capacity:128 ())
         ~nops:8000 ~key_space:3000 ~check_every:1000);
  ]

(* --- Directed unit tests ------------------------------------------- *)

let test_sequential_insert () =
  let table, tree = mk_tree ~key_len:8 ~policy:Policy.stx () in
  for i = 0 to 999 do
    let k = Key.of_int i in
    let tid = Table.append table k in
    if not (Btree.insert tree k tid) then Alcotest.fail "sequential insert"
  done;
  Btree.check_invariants tree;
  Alcotest.(check int) "count" 1000 (Btree.count tree);
  for i = 0 to 999 do
    if Btree.find tree (Key.of_int i) = None then Alcotest.fail "missing key"
  done;
  (* Full ordered iteration. *)
  let xs = ref [] in
  Btree.iter tree (fun k _ -> xs := Key.to_int k :: !xs);
  Alcotest.(check (list int)) "iteration order" (List.init 1000 (fun i -> i))
    (List.rev !xs)

let test_drain () =
  let table, tree = mk_tree ~key_len:8 ~policy:(Policy.all_seqtree ~capacity:32 ()) () in
  let n = 500 in
  for i = 0 to n - 1 do
    let k = Key.of_int i in
    ignore (Btree.insert tree k (Table.append table k))
  done;
  Btree.check_invariants tree;
  (* Remove everything in a scrambled order. *)
  let order = Array.init n (fun i -> i) in
  let rng = Rng.stream seed 4 in
  Ei_util.Rng.shuffle rng order;
  Array.iteri
    (fun step i ->
      if not (Btree.remove tree (Key.of_int i)) then Alcotest.fail "remove failed";
      if step mod 100 = 0 then Btree.check_invariants tree)
    order;
  Btree.check_invariants tree;
  Alcotest.(check int) "empty" 0 (Btree.count tree)

let test_memory_accounting () =
  let table, tree = mk_tree ~key_len:8 ~policy:(Policy.all_seqtree ~capacity:128 ()) () in
  let m0 = Btree.memory_bytes tree in
  for i = 0 to 2999 do
    let k = Key.of_int i in
    ignore (Btree.insert tree k (Table.append table k))
  done;
  Btree.check_invariants tree;
  (* check_invariants already cross-checks tracked vs recomputed bytes;
     additionally the index must have grown. *)
  Alcotest.(check bool) "grew" true (Btree.memory_bytes tree > m0)

let test_prefix_distribution_dependence () =
  (* §2: prefix compression's ratio depends on the key distribution —
     shared-prefix keys compress well, random keys do not — whereas the
     compact (SeqTree) representation always saves. *)
  let key_len = 16 in
  let build policy keys =
    let table = Table.create ~key_len () in
    let tree =
      Btree.create ~key_len ~load:(Table.loader table) ~policy ()
    in
    Array.iter
      (fun k -> ignore (Btree.insert tree k (Table.append table k)))
      keys;
    Btree.check_invariants tree;
    Btree.memory_bytes tree
  in
  let n = 8_000 in
  (* Shared-prefix keys: a 12-byte constant prefix + 4-byte counter. *)
  let shared =
    Array.init n (fun i ->
        let b = Bytes.make key_len 'p' in
        Bytes.set_int32_be b 12 (Int32.of_int i);
        Bytes.unsafe_to_string b)
  in
  let rng = Rng.stream seed 123 in
  let seen = Hashtbl.create 1024 in
  let random =
    Array.init n (fun _ ->
        let rec fresh () =
          let k = Key.random rng key_len in
          if Hashtbl.mem seen k then fresh ()
          else begin
            Hashtbl.add seen k ();
            k
          end
        in
        fresh ())
  in
  let stx_shared = build Policy.stx shared in
  let pre_shared = build (Policy.all_prefix ()) shared in
  let seq_shared = build (Policy.all_seqtree ~capacity:128 ()) shared in
  let stx_random = build Policy.stx random in
  let pre_random = build (Policy.all_prefix ()) random in
  let seq_random = build (Policy.all_seqtree ~capacity:128 ()) random in
  (* Prefix compression shines on shared prefixes... *)
  Alcotest.(check bool) "prefix wins on shared prefixes" true
    (float_of_int pre_shared < 0.7 *. float_of_int stx_shared);
  (* ...but saves almost nothing on random keys... *)
  Alcotest.(check bool) "prefix useless on random keys" true
    (float_of_int pre_random > 0.95 *. float_of_int stx_random);
  (* ...while the compact representation always saves. *)
  Alcotest.(check bool) "seqtree saves on shared" true (seq_shared * 2 < stx_shared);
  Alcotest.(check bool) "seqtree saves on random" true (seq_random * 2 < stx_random)

let test_compression_ratio () =
  (* STX-SeqTree128 must be several times smaller than STX for the same
     data — the headline space claim. *)
  let build policy =
    let table, tree = mk_tree ~key_len:8 ~policy () in
    let rng = Rng.stream seed 77 in
    for _ = 1 to 20_000 do
      let k = Key.random rng 8 in
      ignore (Btree.insert tree k (Table.append table k))
    done;
    Btree.memory_bytes tree
  in
  let stx = build Policy.stx in
  let compact = build (Policy.all_seqtree ~capacity:128 ()) in
  let ratio = float_of_int stx /. float_of_int compact in
  if ratio < 1.8 then
    Alcotest.failf "compression ratio too low: %.2f (stx=%d compact=%d)" ratio
      stx compact


let test_bulk_load () =
  (* Bulk loading must be equivalent to inserting in order, for standard
     and compact initial representations, across sizes including the
     boundary cases (0, 1, one leaf, many levels). *)
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun n ->
          let table = Table.create ~key_len:8 () in
          let keys = Array.init n (fun i -> Key.of_int (3 * i)) in
          let tids = Array.map (Table.append table) keys in
          let tree =
            Btree.of_sorted ~key_len:8 ~load:(Table.loader table) ~policy keys
              tids n
          in
          Btree.check_invariants tree;
          Alcotest.(check int) (Printf.sprintf "%s n=%d count" pname n) n
            (Btree.count tree);
          Array.iteri
            (fun i k ->
              match Btree.find tree k with
              | Some tid when tid = tids.(i) -> ()
              | _ -> Alcotest.failf "%s n=%d: bulk-loaded key lost" pname n)
            keys;
          (* The tree must remain fully operational after bulk load. *)
          let extra = Key.of_int 1 in
          let xt = Table.append table extra in
          if not (Btree.insert tree extra xt) then Alcotest.fail "insert after bulk";
          if n > 2 && not (Btree.remove tree keys.(n / 2)) then
            Alcotest.fail "remove after bulk";
          Btree.check_invariants tree;
          (* Ordered iteration intact. *)
          let prev = ref None in
          Btree.iter tree (fun k _ ->
              (match !prev with
              | Some p -> assert (Key.compare p k < 0)
              | None -> ());
              prev := Some k))
        [ 0; 1; 2; 13; 14; 15; 100; 5_000 ])
    [
      ("stx", Policy.stx);
      ("seqtree64", Policy.all_seqtree ~capacity:64 ());
      ("prefix", Policy.all_prefix ());
    ]

let () =
  Alcotest.run "ei_btree"
    [
      ("random-ops", grid);
      ("soak", soak);
      ( "directed",
        [
          Alcotest.test_case "sequential insert" `Quick test_sequential_insert;
          Alcotest.test_case "drain" `Quick test_drain;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
          Alcotest.test_case "compression ratio" `Quick test_compression_ratio;
          Alcotest.test_case "prefix compression distribution dependence" `Quick
            test_prefix_distribution_dependence;
          Alcotest.test_case "bulk load" `Quick test_bulk_load;
        ] );
    ]
