(* Tests for the optimistic-lock-coupling B+-tree: single-threaded
   equivalence against a Map model (both leaf kinds), then multi-domain
   stress tests — concurrent disjoint inserts, concurrent overlapping
   inserts, and readers racing writers — followed by full validation. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Olc = Ei_olc.Btree_olc

module Smap = Map.Make (String)

(* Every seed below derives from EI_SEED (default 1), so a CI failure
   reproduces with the printed seed: EI_SEED=n dune exec test/test_olc.exe *)
let seed = Rng.env_seed ~default:1

let mk ?(kind = Olc.Olc_std) ~key_len () =
  let table = Table.create ~key_len () in
  let load =
    Olc.safe_loader ~key_len ~table_length:(fun () -> Table.length table)
      ~load:(Table.loader table)
  in
  let tree = Olc.create ~kind ~key_len ~load () in
  (table, tree)

let seq_kind = Olc.Olc_seqtree { capacity = 128; levels = 2; breathing = 4 }

let elastic_kind ~size_bound =
  Olc.Olc_elastic (Olc.default_elastic_config ~size_bound)

(* --- Single-threaded equivalence ------------------------------------ *)

let single_thread ~kind ~seed () =
  let table, tree = mk ~kind ~key_len:8 () in
  let rng = Rng.create seed in
  let model = ref Smap.empty in
  let pool = Array.init 800 (fun _ -> Key.random rng 8) in
  let tid_of = Hashtbl.create 128 in
  for step = 1 to 4000 do
    let k = pool.(Rng.int rng 800) in
    let c = Rng.int rng 100 in
    if c < 55 then begin
      let tid =
        match Hashtbl.find_opt tid_of k with
        | Some t -> t
        | None ->
          let t = Table.append table k in
          Hashtbl.add tid_of k t;
          t
      in
      if Olc.insert tree k tid <> not (Smap.mem k !model) then
        Alcotest.fail "insert mismatch";
      if not (Smap.mem k !model) then model := Smap.add k tid !model
    end
    else if c < 75 then begin
      if Olc.remove tree k <> Smap.mem k !model then
        Alcotest.fail "remove mismatch";
      model := Smap.remove k !model
    end
    else if c < 90 then begin
      match (Olc.find tree k, Smap.find_opt k !model) with
      | Some a, Some b -> if a <> b then Alcotest.fail "tid mismatch"
      | None, None -> ()
      | _ -> Alcotest.fail "membership mismatch"
    end
    else begin
      let start = Key.random rng 8 in
      let n = 1 + Rng.int rng 20 in
      let got =
        List.rev (Olc.fold_range tree ~start ~n (fun acc k t -> (k, t) :: acc) [])
      in
      let expected =
        Smap.to_seq !model
        |> Seq.filter (fun (k, _) -> Key.compare k start >= 0)
        |> Seq.take n |> List.of_seq
      in
      if got <> expected then Alcotest.failf "scan mismatch at step %d" step
    end;
    if Olc.count tree <> Smap.cardinal !model then Alcotest.fail "count mismatch"
  done;
  Olc.check_invariants tree

(* --- Multi-domain tests --------------------------------------------- *)

let domains = 4

let test_parallel_disjoint_inserts () =
  let table, tree = mk ~key_len:8 () in
  let per_domain = 5_000 in
  (* Pre-append all rows: the table itself is not the system under test. *)
  let keys =
    Array.init (domains * per_domain) (fun i -> Key.of_int ((i * 2654435761) land 0xFFFFFF))
  in
  (* Deduplicate by construction: use index-based unique keys instead. *)
  let keys = Array.mapi (fun i _ -> Key.of_int i) keys in
  let tids = Array.map (Table.append table) keys in
  let worker d () =
    for i = d * per_domain to ((d + 1) * per_domain) - 1 do
      if not (Olc.insert tree keys.(i) tids.(i)) then failwith "dup?"
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Olc.check_invariants tree;
  Alcotest.(check int) "all inserted" (domains * per_domain) (Olc.count tree);
  Array.iteri
    (fun i k ->
      match Olc.find tree k with
      | Some tid when tid = tids.(i) -> ()
      | _ -> Alcotest.fail "key lost")
    keys

let test_mixed_sim () =
  (* Deterministic port of the old free-running reader/writer race
     (writers inserting overlapping slices, readers checking tids and
     scan ordering until an Atomic stop flag flipped): the same
     invariants, but the fibers now interleave at the tree's production
     yield points under seeded schedules from the ei_sim scheduler, so
     a failure replays bit-identically from its choice list instead of
     depending on wall-clock timing.  Readers do a fixed amount of work
     — no stop flag, no retry loop. *)
  let module Sched = Ei_sim.Sched in
  let n_keys = 512 in
  let mk_scenario () =
    let table, tree = mk ~kind:seq_kind ~key_len:8 () in
    let rng = Rng.stream seed 99 in
    let seen = Hashtbl.create 1024 in
    let keys =
      Array.init n_keys (fun _ ->
          let rec fresh () =
            let k = Key.random rng 8 in
            if Hashtbl.mem seen k then fresh ()
            else begin
              Hashtbl.add seen k ();
              k
            end
          in
          fresh ())
    in
    let tids = Array.map (Table.append table) keys in
    let writer d () =
      (* Overlapping slice [d * n/8, d * n/8 + n/2). *)
      let start = d * n_keys / 8 in
      for i = start to start + (n_keys / 2) - 1 do
        let i = i mod n_keys in
        ignore (Olc.insert tree keys.(i) tids.(i))
      done
    in
    let reader r () =
      let rng = Rng.stream seed (7 + r) in
      for _ = 1 to 128 do
        let i = Rng.int rng n_keys in
        (match Olc.find tree keys.(i) with
        | Some tid -> if tid <> tids.(i) then failwith "wrong tid under race"
        | None -> ());
        ignore
          (Olc.fold_range tree ~start:keys.(i) ~n:10
             (fun acc k _ ->
               (match acc with
               | Some prev ->
                 if Key.compare prev k >= 0 then failwith "scan out of order"
               | None -> ());
               Some k)
             None);
        Sched.pause ()
      done
    in
    let check () =
      Olc.check_invariants tree;
      (* Union of writer slices. *)
      let expected = Hashtbl.create 1024 in
      for d = 0 to 2 do
        let start = d * n_keys / 8 in
        for i = start to start + (n_keys / 2) - 1 do
          Hashtbl.replace expected (i mod n_keys) ()
        done
      done;
      Alcotest.(check int) "union size" (Hashtbl.length expected)
        (Olc.count tree);
      Hashtbl.iter
        (fun i () ->
          match Olc.find tree keys.(i) with
          | Some tid when tid = tids.(i) -> ()
          | _ -> Alcotest.fail "missing after race")
        expected
    in
    {
      Sched.fibers =
        Array.append
          (Array.init 3 (fun d -> (Printf.sprintf "writer%d" d, writer d)))
          (Array.init 2 (fun r -> (Printf.sprintf "reader%d" r, reader r)));
      check;
    }
  in
  match Sched.explore ~seed ~rounds:12 mk_scenario with
  | None -> ()
  | Some f ->
    Alcotest.failf "mixed read/write failed (seed %d, round %d): %s" seed
      f.Sched.round f.Sched.error

let test_parallel_remove () =
  let table, tree = mk ~key_len:8 () in
  let n = 10_000 in
  let keys = Array.init n (fun i -> Key.of_int i) in
  let tids = Array.map (Table.append table) keys in
  Array.iteri (fun i k -> ignore (Olc.insert tree k tids.(i))) keys;
  (* Each domain removes a disjoint residue class. *)
  let worker d () =
    let i = ref d in
    while !i < n do
      if not (Olc.remove tree keys.(!i)) then failwith "remove failed";
      i := !i + domains
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Olc.check_invariants tree;
  Alcotest.(check int) "emptied" 0 (Olc.count tree)

(* --- Elastic BTreeOLC -------------------------------------------------- *)

let test_elastic_single_thread () =
  single_thread ~kind:(elastic_kind ~size_bound:20_000) ~seed:(seed + 2) ()

let test_convert_scan_straddle () =
  (* Regression: range queries straddling a compact/standard leaf
     boundary while conversions run.  A tight bound leaves the tree
     with both leaf kinds side by side; windowed scans from starts
     spread across the whole key space must agree with a model after
     every conversion-churning phase — filling past the bound
     (compaction), interleaved removals (decompaction of drained
     leaves), and a bound slash/restore cycle (forced sweeps in both
     directions). *)
  let table, tree = mk ~kind:(elastic_kind ~size_bound:8_192) ~key_len:8 () in
  let n = 2_000 in
  let keys = Array.init n (fun i -> Key.of_int i) in
  let tids = Array.map (Table.append table) keys in
  let present = Array.make n false in
  let check_window start_i w =
    let got =
      List.rev
        (Olc.fold_range tree ~start:keys.(start_i) ~n:w
           (fun acc k t -> (k, t) :: acc)
           [])
    in
    let expected =
      let rec take j w acc =
        if j >= n || w = 0 then List.rev acc
        else if present.(j) then take (j + 1) (w - 1) ((keys.(j), tids.(j)) :: acc)
        else take (j + 1) w acc
      in
      take start_i w []
    in
    if got <> expected then
      Alcotest.failf "straddle scan mismatch at start %d width %d" start_i w
  in
  let sweep_windows () =
    (* Starts at every 17th key cover every leaf boundary over the
       phases; widths larger than a leaf force multi-leaf walks. *)
    let i = ref 0 in
    while !i < n do
      check_window !i 48;
      i := !i + 17
    done
  in
  (* Phase 1: fill past the bound — the tree must compact some leaves
     but not others. *)
  Array.iteri
    (fun i k ->
      ignore (Olc.insert tree k tids.(i));
      present.(i) <- true)
    keys;
  Alcotest.(check bool) "compact leaves exist" true
    (Olc.elastic_compact_leaves tree > 0);
  sweep_windows ();
  (* Phase 2: interleave removals with scans so windows cross leaves
     that are draining (and decompacting) as the sweep advances. *)
  for i = 0 to n - 1 do
    if i mod 3 = 0 then begin
      ignore (Olc.remove tree keys.(i));
      present.(i) <- false;
      if i mod 96 = 0 then check_window (max 0 (i - 24)) 48
    end
  done;
  sweep_windows ();
  (* Phase 3: slash then restore the bound — full conversion sweeps in
     both directions — scanning after each retune. *)
  Olc.set_size_bound tree 2_048;
  sweep_windows ();
  Olc.set_size_bound tree (1 lsl 20);
  for i = 0 to n - 1 do
    if (not present.(i)) && i mod 6 = 0 then begin
      ignore (Olc.insert tree keys.(i) tids.(i));
      present.(i) <- true
    end
  done;
  sweep_windows ();
  Olc.check_invariants tree

let test_elastic_concurrent_pressure () =
  (* Several domains insert concurrently past the bound: the tree must
     shrink itself, stay consistent, and keep every key findable. *)
  let table, tree = mk ~kind:(elastic_kind ~size_bound:450_000) ~key_len:8 () in
  let per_domain = 8_000 in
  let keys = Array.init (domains * per_domain) (fun i -> Key.of_int i) in
  (* Shuffle so inserts spread over the key space: the overflow-piggyback
     policy compacts leaves that keep receiving inserts (append-only
     patterns need the cold-sweep variant, tested in ei_core). *)
  Rng.shuffle (Rng.stream seed 17) keys;
  let tids = Array.map (Table.append table) keys in
  let worker d () =
    for i = d * per_domain to ((d + 1) * per_domain) - 1 do
      if not (Olc.insert tree keys.(i) tids.(i)) then failwith "dup?"
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Olc.check_invariants tree;
  Alcotest.(check int) "all inserted" (domains * per_domain) (Olc.count tree);
  Alcotest.(check string) "under pressure" "shrinking" (Olc.elastic_state_name tree);
  Alcotest.(check bool) "converted leaves" true (Olc.elastic_conversions tree > 0);
  Alcotest.(check bool) "has compact leaves" true (Olc.elastic_compact_leaves tree > 0);
  (* The atomically tracked size is approximate under races but must be
     close to the exact recomputation, and near the soft bound. *)
  let exact = Olc.memory_bytes tree in
  let tracked = Olc.elastic_memory_bytes tree in
  let drift = abs (exact - tracked) in
  if drift * 20 > exact then
    Alcotest.failf "accounting drift too large: exact=%d tracked=%d" exact tracked;
  if exact > 450_000 * 12 / 10 then
    Alcotest.failf "blew the bound: %d" exact;
  Array.iteri
    (fun i k ->
      match Olc.find tree k with
      | Some tid when tid = tids.(i) -> ()
      | _ -> Alcotest.fail "key lost under concurrent pressure")
    keys

let test_elastic_concurrent_drain () =
  (* Fill past the bound, then remove most keys from several domains:
     compact leaves must shrink back (expansion by removal). *)
  let table, tree = mk ~kind:(elastic_kind ~size_bound:200_000) ~key_len:8 () in
  let n = 24_000 in
  let keys = Array.init n (fun i -> Key.of_int i) in
  let tids = Array.map (Table.append table) keys in
  Array.iteri (fun i k -> ignore (Olc.insert tree k tids.(i))) keys;
  let before_compact = Olc.elastic_compact_leaves tree in
  Alcotest.(check bool) "compacted during fill" true (before_compact > 0);
  let worker d () =
    let i = ref d in
    while !i < n do
      if !i mod 8 <> 7 then ignore (Olc.remove tree keys.(!i));
      i := !i + domains
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Olc.check_invariants tree;
  (* 7/8 of the keys removed: far fewer compact leaves remain. *)
  Alcotest.(check bool) "decompacted by removals" true
    (Olc.elastic_compact_leaves tree < before_compact / 2);
  Array.iteri
    (fun i k ->
      let expect = i mod 8 = 7 in
      match Olc.find tree k with
      | Some _ when expect -> ()
      | None when not expect -> ()
      | _ -> Alcotest.fail "drain inconsistency")
    keys

let () =
  Alcotest.run "ei_olc"
    [
      ( "single-thread",
        [
          Alcotest.test_case "std leaves" `Quick
            (single_thread ~kind:Olc.Olc_std ~seed);
          Alcotest.test_case "seqtree leaves" `Quick
            (single_thread ~kind:seq_kind ~seed:(seed + 1));
        ] );
      ( "multi-domain",
        [
          Alcotest.test_case "disjoint inserts" `Quick test_parallel_disjoint_inserts;
          Alcotest.test_case "mixed read/write (sim-scheduled)" `Quick
            test_mixed_sim;
          Alcotest.test_case "parallel removes" `Quick test_parallel_remove;
        ] );
      ( "elastic-olc",
        [
          Alcotest.test_case "single-thread equivalence" `Quick
            test_elastic_single_thread;
          Alcotest.test_case "convert/scan straddle regression" `Quick
            test_convert_scan_straddle;
          Alcotest.test_case "concurrent pressure" `Quick
            test_elastic_concurrent_pressure;
          Alcotest.test_case "concurrent drain" `Quick test_elastic_concurrent_drain;
        ] );
    ]
