(* Tests for the elastic skip list: differential correctness against a
   Map model while the state machine churns, the shrink/expand
   lifecycle, and space savings against the plain skip list. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Table = Ei_storage.Table
module Esl = Ei_core.Elastic_skiplist
module Skiplist = Ei_baselines.Skiplist

module Smap = Map.Make (String)

let mk ?(size_bound = 64 * 1024) ~key_len () =
  let table = Table.create ~key_len () in
  let config = Esl.default_config ~size_bound in
  let t = Esl.create ~key_len ~load:(Table.loader table) config () in
  (table, t)

let test_random_ops () =
  (* Small bound => constant churn between states while checking every
     operation against the model. *)
  let table, t = mk ~size_bound:20_000 ~key_len:8 () in
  let rng = Rng.stream seed 41 in
  let model = ref Smap.empty in
  let pool = Array.init 1_500 (fun _ -> Key.random rng 8) in
  let tid_of = Hashtbl.create 128 in
  for step = 1 to 10_000 do
    let k = pool.(Rng.int rng (Array.length pool)) in
    let c = Rng.int rng 100 in
    if c < 50 then begin
      let tid =
        match Hashtbl.find_opt tid_of k with
        | Some tid -> tid
        | None ->
          let tid = Table.append table k in
          Hashtbl.add tid_of k tid;
          tid
      in
      if Esl.insert t k tid <> not (Smap.mem k !model) then
        Alcotest.failf "insert mismatch at step %d" step;
      if not (Smap.mem k !model) then model := Smap.add k tid !model
    end
    else if c < 72 then begin
      if Esl.remove t k <> Smap.mem k !model then
        Alcotest.failf "remove mismatch at step %d" step;
      model := Smap.remove k !model
    end
    else if c < 88 then begin
      match (Esl.find t k, Smap.find_opt k !model) with
      | Some a, Some b -> if a <> b then Alcotest.fail "tid mismatch"
      | None, None -> ()
      | _ -> Alcotest.failf "membership mismatch at step %d" step
    end
    else begin
      let start = Key.random rng 8 in
      let n = 1 + Rng.int rng 25 in
      let got =
        List.rev (Esl.fold_range t ~start ~n (fun acc k' v -> (k', v) :: acc) [])
      in
      let expected =
        Smap.to_seq !model
        |> Seq.filter (fun (k', _) -> Key.compare k' start >= 0)
        |> Seq.take n |> List.of_seq
      in
      if got <> expected then Alcotest.failf "scan mismatch at step %d" step
    end;
    if Esl.count t <> Smap.cardinal !model then
      Alcotest.failf "count mismatch at step %d" step;
    if step mod 500 = 0 then Esl.check_invariants t
  done;
  Esl.check_invariants t;
  Alcotest.(check bool) "elasticity engaged" true (Esl.transitions t > 0);
  Alcotest.(check bool) "segments were formed" true (Esl.conversions t > 0)

let test_lifecycle () =
  let size_bound = 600_000 in
  let table, t = mk ~size_bound ~key_len:8 () in
  let rng = Rng.stream seed 3 in
  let seen = Hashtbl.create 1024 in
  let keys =
    Array.init 15_000 (fun _ ->
        let rec fresh () =
          let k = Key.random rng 8 in
          if Hashtbl.mem seen k then fresh ()
          else begin
            Hashtbl.add seen k ();
            k
          end
        in
        fresh ())
  in
  Array.iter (fun k -> ignore (Esl.insert t k (Table.append table k))) keys;
  Esl.check_invariants t;
  Alcotest.(check string) "shrinking" "shrinking" (Esl.state_name (Esl.state t));
  Alcotest.(check bool) "has segments" true (Esl.segments t > 0);
  let overshoot = float_of_int (Esl.memory_bytes t) /. float_of_int size_bound in
  if overshoot > 1.2 then Alcotest.failf "overshoot %.2f" overshoot;
  Array.iter
    (fun k -> if Esl.find t k = None then Alcotest.fail "key lost under pressure")
    keys;
  (* Delete 85% and drive searches: segments dissolve, state normalises. *)
  Array.iteri (fun i k -> if i mod 7 <> 0 then ignore (Esl.remove t k)) keys;
  Esl.check_invariants t;
  let budget = ref 300_000 in
  while Esl.segments t > 0 && !budget > 0 do
    decr budget;
    ignore (Esl.find t keys.(7 * (!budget mod (Array.length keys / 7))))
  done;
  Alcotest.(check int) "all segments dissolved" 0 (Esl.segments t);
  Esl.check_invariants t;
  Array.iteri
    (fun i k -> if i mod 7 = 0 && Esl.find t k = None then Alcotest.fail "survivor lost")
    keys

let test_space_savings () =
  (* Same data: elastic skip list under a tight bound vs plain skip
     list.  The framework claim (§3): the same transformation works on a
     skip list and yields comparable savings. *)
  let key_len = 16 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let rng = Rng.stream seed 9 in
  let seen = Hashtbl.create 1024 in
  let keys =
    Array.init 20_000 (fun _ ->
        let rec fresh () =
          let k = Key.random rng key_len in
          if Hashtbl.mem seen k then fresh ()
          else begin
            Hashtbl.add seen k ();
            k
          end
        in
        fresh ())
  in
  let tids = Array.map (Table.append table) keys in
  let plain = Skiplist.create ~key_len () in
  Array.iteri (fun i k -> ignore (Skiplist.insert plain k tids.(i))) keys;
  let plain_bytes = Skiplist.memory_bytes plain in
  let config = Esl.default_config ~size_bound:(plain_bytes / 3) in
  let elastic = Esl.create ~key_len ~load config () in
  Array.iteri (fun i k -> ignore (Esl.insert elastic k tids.(i))) keys;
  Esl.check_invariants elastic;
  let ratio = float_of_int (Esl.memory_bytes elastic) /. float_of_int plain_bytes in
  if ratio > 0.55 then Alcotest.failf "elastic/plain ratio too high: %.2f" ratio;
  Array.iteri
    (fun i k ->
      match Esl.find elastic k with
      | Some tid when tid = tids.(i) -> ()
      | _ -> Alcotest.fail "key lost")
    keys

let () =
  Alcotest.run "ei_elastic_skiplist"
    [
      ( "elastic-skiplist",
        [
          Alcotest.test_case "random ops with churn" `Quick test_random_ops;
          Alcotest.test_case "shrink/expand lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "space savings vs plain" `Quick test_space_savings;
        ] );
    ]
