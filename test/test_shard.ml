(* Multi-domain churn tests for the sharded serving layer (ei_shard).

   a. Four domains hammer one elastic BTreeOLC directly — disjoint key
      ranges, interleaved find/update/remove-reinsert churn under a
      size bound tight enough to force compaction — ending with the
      deep Ei_check OLC validator (which reconciles the shared atomic
      byte accounting against a recomputed walk) and an exact count
      reconciliation.

   b. A 4-shard elastic fleet behind Serve with the global memory
      coordinator, churned by two concurrent producer domains (4 shard
      domains + coordinator + 2 producers), ending with Check.run
      recursing into every shard plus total-count and total-bytes
      reconciliation and the global-bound check. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Olc = Ei_olc.Btree_olc
module Shard = Ei_shard.Shard
module Serve = Ei_shard.Serve
module Ycsb = Ei_workload.Ycsb
module Check = Ei_check.Check

let domains = 4

(* All churn streams derive from EI_SEED (default 42) so a CI failure
   reproduces with: EI_SEED=n dune exec test/test_shard.exe *)
let seed = Rng.env_seed ~default:42

let fail_on_errors label findings =
  match
    List.filter
      (fun (f : Check.finding) -> f.Check.severity = Check.Error)
      findings
  with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: %s" label (Format.asprintf "%a" Check.pp_finding f)

let safe_loader table =
  Olc.safe_loader ~key_len:8
    ~table_length:(fun () -> Table.length table)
    ~load:(Table.loader table)

(* --- a. direct multi-domain churn on one elastic OLC tree ------------ *)

let test_olc_churn () =
  let table = Table.create ~key_len:8 () in
  let n_per = 4_000 in
  let total = domains * n_per in
  (* ~20 B/key is below the standard tree's footprint, so the tree must
     shrink (compact leaves) while the domains churn. *)
  let bound = total * 20 in
  let tree =
    Olc.create
      ~kind:(Olc.Olc_elastic (Olc.default_elastic_config ~size_bound:bound))
      ~key_len:8 ~load:(safe_loader table) ()
  in
  (* Disjoint per-domain key ranges (domain tag in the high bits), all
     pre-appended so updates always carry a tid of the same key. *)
  let keys =
    Array.init domains (fun d ->
        Array.init n_per (fun i -> Key.of_int ((d lsl 40) lor i)))
  in
  let tids = Array.map (Array.map (Table.append table)) keys in
  let worker d () =
    let rng = Rng.stream seed d in
    let ks = keys.(d) and ts = tids.(d) in
    for i = 0 to n_per - 1 do
      ignore (Olc.insert tree ks.(i) ts.(i));
      match Rng.int rng 4 with
      | 0 -> ignore (Olc.find tree ks.(Rng.int rng (i + 1)))
      | 1 ->
        let j = Rng.int rng (i + 1) in
        ignore (Olc.update tree ks.(j) ts.(j))
      | 2 when i > 0 ->
        (* Remove and reinsert an earlier own key: churns the leaves
           while keeping the final count deterministic. *)
        let j = Rng.int rng i in
        if Olc.remove tree ks.(j) then ignore (Olc.insert tree ks.(j) ts.(j))
      | _ -> ()
    done;
    (* Drop the top quarter for good. *)
    for i = 3 * n_per / 4 to n_per - 1 do
      ignore (Olc.remove tree ks.(i))
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "count reconciles"
    (domains * (3 * n_per / 4))
    (Olc.count tree);
  Alcotest.(check bool) "tree shrank under the bound" true
    (Olc.elastic_compact_leaves tree > 0);
  fail_on_errors "olc validator" (Check.check_olc tree)

(* --- b. sharded fleet behind Serve with the coordinator -------------- *)

let mk_fleet ~shards ~global_bound =
  let table = Table.create ~key_len:8 () in
  let load = safe_loader table in
  let parts =
    Array.init shards (fun i ->
        Registry.make
          ~name:(Printf.sprintf "olc-elastic/%d" i)
          ~key_len:8 ~load
          (Registry.Olc
             (Olc.Olc_elastic
                (Olc.default_elastic_config
                   ~size_bound:(max 1 (global_bound / shards))))))
  in
  (table, Shard.create parts)

let test_serve_churn () =
  let shards = 4 in
  let n = 16_000 in
  let bound = n * 20 in
  let table, router = mk_fleet ~shards ~global_bound:bound in
  (* No periodic coordinator domain: rebalances are driven explicitly
     below, so the pass count is exact instead of timing-dependent. *)
  let serve = Serve.start router in
  let keys = Array.init n (fun i -> Ycsb.key_of_seq i) in
  let tids = Array.map (Table.append table) keys in
  let producers = 2 in
  let per = n / producers in
  let producer p () =
    let base = p * per in
    let batch a = ignore (Serve.exec serve a) in
    (* Load this producer's half in sub-batches. *)
    let step = 256 in
    let i = ref 0 in
    while !i < per do
      let len = min step (per - !i) in
      batch
        (Array.init len (fun j ->
             let s = base + !i + j in
             Serve.Insert (keys.(s), tids.(s))));
      i := !i + len
    done;
    (* Churn: scattered reads, full-range in-place updates (tid of the
       same key), short cross-shard scans, then remove the top quarter. *)
    batch (Array.init per (fun j -> Serve.Find keys.(base + (j * 7 mod per))));
    batch
      (Array.init per (fun j ->
           let s = base + j in
           Serve.Update (keys.(s), tids.(s))));
    batch (Array.init 64 (fun j -> Serve.Scan (keys.(base + j), 100)));
    batch
      (Array.init (per / 4) (fun j ->
           Serve.Remove keys.(base + per - (per / 4) + j)))
  in
  let ds = List.init producers (fun p -> Domain.spawn (producer p)) in
  List.iter Domain.join ds;
  (* Two explicit coordinator passes: the first re-splits the budget
     from the post-churn sizes, the second sees the fleet's reaction. *)
  Serve.rebalance_with serve (Serve.default_coordinator ~global_bound:bound);
  Serve.rebalance_with serve (Serve.default_coordinator ~global_bound:bound);
  let published = Array.fold_left ( + ) 0 (Serve.shard_sizes serve) in
  let rebalances = Serve.rebalances serve in
  Serve.stop serve;
  (* Total-count reconciliation: everything inserted minus the removes. *)
  Alcotest.(check int) "count reconciles"
    (n - (producers * (per / 4)))
    (Shard.count router);
  (* Total-bytes reconciliation: the sizes the domains published must
     match the parts' own accounting once the fleet is quiesced. *)
  Alcotest.(check int) "published bytes reconcile"
    (Shard.memory_bytes router)
    (Array.fold_left ( + ) 0 (Serve.shard_sizes serve));
  Alcotest.(check int) "exactly the explicit coordinator passes" 2 rebalances;
  Alcotest.(check bool) "aggregate within global bound (+10%)" true
    (float_of_int published <= 1.1 *. float_of_int bound);
  (* Deep validation of every shard: Check.run recurses into each part
     of the composite router. *)
  let report = Check.run (Shard.index_ops router) in
  fail_on_errors "shard fleet validator" (Check.errors report)

let () =
  Alcotest.run "ei_shard"
    [
      ( "churn",
        [
          Alcotest.test_case "4-domain elastic OLC churn" `Quick test_olc_churn;
          Alcotest.test_case "4-shard serve churn + coordinator" `Quick
            test_serve_churn;
        ] );
    ]
