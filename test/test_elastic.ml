(* Tests for the elasticity algorithm and the elastic B+-tree:
   correctness under random operations while states churn, the
   shrink/expand lifecycle against the soft size bound, hysteresis, and
   convergence back to a fully standard tree. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Table = Ei_storage.Table
module Btree = Ei_btree.Btree
module Policy = Ei_btree.Policy
module Elasticity = Ei_core.Elasticity
module Elastic = Ei_core.Elastic_btree

module Smap = Map.Make (String)

let mk ?(size_bound = 64 * 1024) ~key_len () =
  let table = Table.create ~key_len () in
  let config = Elasticity.default_config ~size_bound in
  let tree =
    Elastic.create ~key_len ~load:(Table.loader table) config ()
  in
  (table, tree)

(* --- Correctness while elasticity is active ------------------------ *)

let test_random_ops () =
  (* A small bound forces Normal -> Shrinking -> Expanding churn while we
     verify every operation against the model. *)
  let table, tree = mk ~size_bound:24_000 ~key_len:8 () in
  let rng = Rng.stream seed 1234 in
  let model = ref Smap.empty in
  let pool = Array.init 2_000 (fun _ -> Key.random rng 8) in
  let tid_of = Hashtbl.create 256 in
  for step = 1 to 12_000 do
    let k = pool.(Rng.int rng (Array.length pool)) in
    let choice = Rng.int rng 100 in
    if choice < 55 then begin
      let tid =
        match Hashtbl.find_opt tid_of k with
        | Some tid -> tid
        | None ->
          let tid = Table.append table k in
          Hashtbl.add tid_of k tid;
          tid
      in
      let inserted = Elastic.insert tree k tid in
      if inserted <> not (Smap.mem k !model) then
        Alcotest.fail "insert mismatch";
      if inserted then model := Smap.add k tid !model
    end
    else if choice < 80 then begin
      let removed = Elastic.remove tree k in
      if removed <> Smap.mem k !model then Alcotest.fail "remove mismatch";
      if removed then model := Smap.remove k !model
    end
    else begin
      match (Elastic.find tree k, Smap.find_opt k !model) with
      | Some a, Some b -> if a <> b then Alcotest.fail "tid mismatch"
      | None, None -> ()
      | _ -> Alcotest.fail "membership mismatch"
    end;
    if Elastic.count tree <> Smap.cardinal !model then
      Alcotest.failf "count mismatch at step %d" step;
    if step mod 500 = 0 then Elastic.check_invariants tree
  done;
  Elastic.check_invariants tree;
  (* Elasticity must actually have engaged during the run. *)
  Alcotest.(check bool) "states changed" true (Elastic.transitions tree > 0)

(* --- Lifecycle: shrink under pressure, expand after ----------------- *)

let test_lifecycle () =
  (* The bound must be reachable: 12k 8-byte keys need ~130 KB even at
     maximal compaction, while STX would use ~330 KB.  200 KB forces
     shrinking but is attainable. *)
  let size_bound = 200_000 in
  let table, tree = mk ~size_bound ~key_len:8 () in
  let rng = Rng.stream seed 9 in
  let keys = Array.init 12_000 (fun _ -> Key.random rng 8) in
  (* Deduplicate: regenerate clashes. *)
  let seen = Hashtbl.create 1024 in
  Array.iteri
    (fun i k ->
      let rec fresh k = if Hashtbl.mem seen k then fresh (Key.random rng 8) else k in
      let k = fresh k in
      Hashtbl.add seen k ();
      keys.(i) <- k)
    keys;
  Alcotest.(check string) "starts normal" "normal"
    (Elasticity.state_name (Elastic.state tree));
  Array.iter (fun k -> ignore (Elastic.insert tree k (Table.append table k))) keys;
  Elastic.check_invariants tree;
  Alcotest.(check string) "shrinking under pressure" "shrinking"
    (Elasticity.state_name (Elastic.state tree));
  Alcotest.(check bool) "has compact leaves" true (Elastic.compact_leaves tree > 0);
  (* The index must stay close to the soft bound despite holding far more
     items than a standard tree could: allow 15% overshoot. *)
  let overshoot =
    float_of_int (Elastic.memory_bytes tree) /. float_of_int size_bound
  in
  if overshoot > 1.15 then
    Alcotest.failf "index exceeded soft bound by %.0f%%" ((overshoot -. 1.0) *. 100.0);
  (* Every key still findable through mixed representations. *)
  Array.iter
    (fun k -> if Elastic.find tree k = None then Alcotest.fail "key lost")
    keys;
  (* Delete 90% of the data: expansion should kick in. *)
  Array.iteri
    (fun i k -> if i mod 10 <> 0 then ignore (Elastic.remove tree k))
    keys;
  Elastic.check_invariants tree;
  Alcotest.(check bool) "left shrinking" true (Elastic.state tree <> Elasticity.Shrinking);
  (* Drive searches so the random search-split decompacts hot leaves, and
     verify convergence to a fully standard tree. *)
  let survivors = Array.of_list
      (Array.to_list keys |> List.filteri (fun i _ -> i mod 10 = 0))
  in
  let budget = ref 400_000 in
  while Elastic.compact_leaves tree > 0 && !budget > 0 do
    decr budget;
    ignore (Elastic.find tree survivors.(Rng.int rng (Array.length survivors)))
  done;
  Alcotest.(check int) "fully decompacted" 0 (Elastic.compact_leaves tree);
  Alcotest.(check string) "back to normal" "normal"
    (Elasticity.state_name (Elastic.state tree));
  Elastic.check_invariants tree;
  Array.iter
    (fun k -> if Elastic.find tree k = None then Alcotest.fail "survivor lost")
    survivors

(* --- Capacity progression ------------------------------------------ *)

let test_capacity_progression () =
  let table, tree = mk ~size_bound:60_000 ~key_len:8 () in
  let rng = Rng.stream seed 5 in
  for _ = 1 to 20_000 do
    let k = Key.random rng 8 in
    ignore (Elastic.insert tree k (Table.append table k))
  done;
  let specs =
    Btree.fold_leaves (Elastic.tree tree)
      (fun acc spec _ ->
        match spec with
        | Policy.Spec_seq c ->
          if not (List.mem c acc) then c :: acc else acc
        | Policy.Spec_std | Policy.Spec_sub _ | Policy.Spec_pre | Policy.Spec_str _ | Policy.Spec_bw | Policy.Spec_gap -> acc)
      []
  in
  (* Compact capacities must be from the 32 -> 64 -> 128 progression and
     the cap must have been reached under this much pressure. *)
  List.iter
    (fun c ->
      if c <> 32 && c <> 64 && c <> 128 then
        Alcotest.failf "unexpected compact capacity %d" c)
    specs;
  Alcotest.(check bool) "reached max capacity" true (List.mem 128 specs)

(* --- Elasticity state machine in isolation ------------------------- *)

let test_state_machine () =
  let config = Elasticity.default_config ~size_bound:1000 in
  let e = Elasticity.create ~std_capacity:16 config in
  let view bytes compact : Policy.view =
    { Policy.bytes; compact_leaves = compact; items = 0 }
  in
  let touch v =
    ignore
      ((Elasticity.policy e).Policy.on_underflow v ~current:Policy.Spec_std
         ~count:0)
  in
  Alcotest.(check string) "initial" "normal" (Elasticity.state_name (Elasticity.state e));
  touch (view 500 0);
  Alcotest.(check string) "below threshold stays normal" "normal"
    (Elasticity.state_name (Elasticity.state e));
  touch (view 901 0);
  Alcotest.(check string) "shrinks at 90%" "shrinking"
    (Elasticity.state_name (Elasticity.state e));
  (* Hysteresis: dropping just below the shrink threshold must NOT expand. *)
  touch (view 880 5);
  Alcotest.(check string) "hysteresis holds" "shrinking"
    (Elasticity.state_name (Elasticity.state e));
  touch (view 700 5);
  Alcotest.(check string) "expands below 75%" "expanding"
    (Elasticity.state_name (Elasticity.state e));
  touch (view 800 5);
  Alcotest.(check string) "expanding persists mid-band" "expanding"
    (Elasticity.state_name (Elasticity.state e));
  touch (view 800 0);
  Alcotest.(check string) "normal once decompacted" "normal"
    (Elasticity.state_name (Elasticity.state e));
  touch (view 950 0);
  Alcotest.(check string) "re-shrinks" "shrinking"
    (Elasticity.state_name (Elasticity.state e))

(* --- Elastic vs STX space at equal item counts ---------------------- *)

let test_space_savings () =
  (* With a tight bound, the elastic tree holds the same data in a
     fraction of STX's space (Fig 5b / Fig 8a shapes). *)
  let rng = Rng.stream seed 31 in
  let keys = Array.init 30_000 (fun _ -> Key.random rng 8) in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let tids = Array.map (Table.append table) keys in
  let stx = Btree.create ~key_len:8 ~load ~policy:Policy.stx () in
  Array.iteri (fun i k -> ignore (Btree.insert stx k tids.(i))) keys;
  let stx_bytes = Btree.memory_bytes stx in
  let config = Elasticity.default_config ~size_bound:(stx_bytes / 3) in
  let elastic = Elastic.create ~key_len:8 ~load:(Table.loader table) config () in
  Array.iteri (fun i k -> ignore (Elastic.insert elastic k tids.(i))) keys;
  Elastic.check_invariants elastic;
  let ratio = float_of_int (Elastic.memory_bytes elastic) /. float_of_int stx_bytes in
  if ratio > 0.55 then Alcotest.failf "elastic/stx ratio too high: %.2f" ratio;
  (* And the data is all there. *)
  Array.iteri
    (fun i k ->
      match Elastic.find elastic k with
      | Some tid when tid = tids.(i) -> ()
      | _ -> Alcotest.fail "key lost under pressure")
    keys


(* --- Bulk load -------------------------------------------------------- *)

let test_bulk_load_elastic () =
  let table = Table.create ~key_len:8 () in
  let n = 20_000 in
  let keys = Array.init n (fun i -> Key.of_int (2 * i)) in
  let tids = Array.map (Table.append table) keys in
  let config = Elasticity.default_config ~size_bound:200_000 in
  let tree =
    Elastic.of_sorted ~key_len:8 ~load:(Table.loader table) config keys tids n
  in
  Elastic.check_invariants tree;
  Alcotest.(check int) "count" n (Elastic.count tree);
  (* Elasticity takes over: push past the bound with more inserts. *)
  let rng = Rng.stream seed 77 in
  for _ = 1 to 20_000 do
    let k = Key.random rng 8 in
    ignore (Elastic.insert tree k (Table.append table k))
  done;
  Elastic.check_invariants tree;
  Alcotest.(check bool) "shrank after bulk load" true
    (Elastic.compact_leaves tree > 0);
  Array.iteri
    (fun i k ->
      match Elastic.find tree k with
      | Some tid when tid = tids.(i) -> ()
      | _ -> Alcotest.fail "bulk-loaded key lost")
    keys

(* --- Cold-leaf compaction (access-aware policy variant) -------------- *)

let test_cold_sweep () =
  (* Append-only (sequential) insertion is adversarial for the default
     overflow-piggybacking policy: cold half-full leaves never overflow,
     so they are never compacted and the index overshoots its bound.
     The cold-sweep variant compacts untouched leaves and respects it. *)
  let run ~cold_sweep_period =
    let table = Table.create ~key_len:8 () in
    let n = 30_000 in
    let config =
      {
        (Elasticity.default_config ~size_bound:500_000) with
        Elasticity.cold_sweep_period;
        cold_sweep_batch = 16;
      }
    in
    let tree = Elastic.create ~key_len:8 ~load:(Table.loader table) config () in
    for i = 0 to n - 1 do
      let k = Key.of_int i in
      ignore (Elastic.insert tree k (Table.append table k))
    done;
    Elastic.check_invariants tree;
    (* All keys must survive either policy. *)
    for i = 0 to n - 1 do
      if Elastic.find tree (Key.of_int i) = None then Alcotest.fail "key lost"
    done;
    Elastic.memory_bytes tree
  in
  let default_bytes = run ~cold_sweep_period:0 in
  let swept_bytes = run ~cold_sweep_period:8 in
  (* Default policy blows well past the bound on this pattern... *)
  Alcotest.(check bool) "default overshoots on append-only" true
    (default_bytes > 550_000);
  (* ...while the access-aware variant stays close to it. *)
  if swept_bytes > 550_000 then
    Alcotest.failf "cold sweep failed to hold the bound: %d bytes" swept_bytes;
  Alcotest.(check bool) "sweep saves vs default" true
    (swept_bytes < default_bytes)

let test_cold_sweep_preserves_hot () =
  (* Leaves that keep being read must not be compacted by the sweep. *)
  let table = Table.create ~key_len:8 () in
  let config =
    {
      (Elasticity.default_config ~size_bound:200_000) with
      Elasticity.cold_sweep_period = 4;
      cold_sweep_batch = 16;
    }
  in
  let tree = Elastic.create ~key_len:8 ~load:(Table.loader table) config () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    let k = Key.of_int i in
    ignore (Elastic.insert tree k (Table.append table k));
    (* Keep the lowest key range hot. *)
    ignore (Elastic.find tree (Key.of_int (i mod 64)))
  done;
  Elastic.check_invariants tree;
  (* The hot prefix should still be served from standard leaves: check
     via the leaf spec distribution that not everything compacted. *)
  let stds =
    Btree.fold_leaves (Elastic.tree tree)
      (fun acc spec _ -> match spec with Policy.Spec_std -> acc + 1 | _ -> acc)
      0
  in
  Alcotest.(check bool) "some standard leaves remain" true (stds > 0)

let () =
  Alcotest.run "ei_core"
    [
      ( "elastic",
        [
          Alcotest.test_case "random ops with churn" `Quick test_random_ops;
          Alcotest.test_case "shrink/expand lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "capacity progression" `Quick test_capacity_progression;
          Alcotest.test_case "space savings vs STX" `Quick test_space_savings;
        ] );
      ( "state-machine",
        [ Alcotest.test_case "transitions + hysteresis" `Quick test_state_machine ] );
      ( "bulk",
        [ Alcotest.test_case "of_sorted + elasticity" `Quick test_bulk_load_elastic ] );
      ( "cold-sweep",
        [
          Alcotest.test_case "bound held on append-only" `Quick test_cold_sweep;
          Alcotest.test_case "hot leaves preserved" `Quick test_cold_sweep_preserves_hot;
        ] );
    ]
