(* ei_net test suite.

   a. Wire codec: qcheck round-trips for every request and reply
      constructor, plus the shared adversarial battery (Codec_harness,
      also used by the WAL frame suite): every single-bit flip, every
      truncation and every length-field lie must never decode to a
      value — and some attacks bit flips cannot reach: a frame with a
      {e valid} CRC over an overlong payload, an unknown tag, a
      negative id.
   b. Connection state machines: chunked-feed equivalence (any
      chunking of the byte stream decodes to the same requests),
      reader poisoning, and the session's ordered-shed policy (batch
      acks before same-round [Busy] sheds, reply stream in request
      order).
   c. The [net-pipeline] sim scenario survives random exploration and
      bounded-exhaustive enumeration, and is registered for the CLI.
   d. End-to-end over a Unix socket: basic operations, per-connection
      pipelining order, backpressure under a fault-slowed fleet (the
      flooder gets [Busy]; a well-behaved client on another connection
      still completes), typed [Timed_out] replies that do not kill the
      connection, key-length validation, exactly-one-reply across
      injected shard crashes with supervisor recovery, and graceful
      drain on {!Server.stop}. *)

module Wire = Ei_net.Wire
module Conn = Ei_net.Conn
module Session = Ei_net.Session
module Server = Ei_net.Server
module Client = Ei_net.Client
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Serve = Ei_shard.Serve
module Shard = Ei_shard.Shard
module Fault = Ei_fault.Fault
module Olc = Ei_olc.Btree_olc
module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Crc32 = Ei_wal.Crc32
module Sim = Ei_sim.Sim
module Sched = Ei_sim.Sched
module H = Codec_harness

let qt = QCheck_alcotest.to_alcotest

(* --- a. wire codec ---------------------------------------------------- *)

let key_gen = QCheck.Gen.(string_size ~gen:char (int_range 0 40))

let request_gen =
  QCheck.Gen.(
    let id = int_range 0 0x3FFF_FFFF in
    let op =
      frequency
        [
          (2, map (fun k -> Wire.Insert k) key_gen);
          (2, map (fun k -> Wire.Remove k) key_gen);
          (2, map (fun k -> Wire.Update k) key_gen);
          (2, map (fun k -> Wire.Find k) key_gen);
          ( 1,
            map2 (fun k n -> Wire.Scan (k, n)) key_gen (int_range 0 0xffffffff)
          );
        ]
    in
    map2 (fun id op -> { Wire.id; op }) id op)

let request_arb = QCheck.make ~print:Wire.describe_request request_gen

let reply_gen =
  QCheck.Gen.(
    let id = int_range 0 0x3FFF_FFFF in
    let status =
      frequency
        [
          (3, map (fun r -> Wire.Applied r) (int_range (-1) 0x3FFF_FFFF));
          (1, return Wire.Rejected);
          (1, return Wire.Timed_out);
          (1, return Wire.Busy);
        ]
    in
    map2 (fun rid status -> { Wire.rid; status }) id status)

let reply_arb = QCheck.make ~print:Wire.describe_reply reply_gen

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request round-trips" ~count:500 request_arb (fun r ->
      let s = Wire.encode_request r in
      match Wire.decode_request s ~pos:0 with
      | Wire.Done (r', n) -> r' = r && n = String.length s
      | Wire.More | Wire.Corrupt _ -> false)

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply round-trips" ~count:500 reply_arb (fun r ->
      let s = Wire.encode_reply r in
      match Wire.decode_reply s ~pos:0 with
      | Wire.Done (r', n) -> r' = r && n = String.length s
      | Wire.More | Wire.Corrupt _ -> false)

(* Fixed vectors hitting every constructor and the id/result edges. *)
let fixed_requests =
  [
    { Wire.id = 0; op = Wire.Insert "k0000001" };
    { Wire.id = 1; op = Wire.Remove (String.make 8 '\xff') };
    { Wire.id = 0x7fff_ffff; op = Wire.Update "\x00\x01\x02\x03" };
    { Wire.id = 2; op = Wire.Find "" };
    { Wire.id = 3; op = Wire.Scan ("abcdefgh", 0) };
    { Wire.id = 4; op = Wire.Scan ("", 0xffffffff) };
  ]

let fixed_replies =
  [
    { Wire.rid = 0; status = Wire.Applied (-1) };
    { Wire.rid = 1; status = Wire.Applied 0 };
    { Wire.rid = 0x7fff_ffff; status = Wire.Applied 0x7fff_ffff };
    { Wire.rid = 2; status = Wire.Rejected };
    { Wire.rid = 3; status = Wire.Timed_out };
    { Wire.rid = 4; status = Wire.Busy };
  ]

let req_verdict s =
  match Wire.decode_request s ~pos:0 with
  | Wire.Done _ -> H.Accepted
  | Wire.More -> H.Incomplete
  | Wire.Corrupt _ -> H.Rejected

let rep_verdict s =
  match Wire.decode_reply s ~pos:0 with
  | Wire.Done _ -> H.Accepted
  | Wire.More -> H.Incomplete
  | Wire.Corrupt _ -> H.Rejected

(* A damaged frame must never be accepted; the incremental decoder may
   hold judgement ([More]) when the damage only lengthens the frame. *)
let damaged = function H.Rejected | H.Incomplete -> true | H.Accepted -> false

(* A pure truncation, though, is always just an incomplete frame: the
   decoder must keep waiting, never misreport corruption. *)
let truncated = function H.Incomplete -> true | H.Rejected | H.Accepted -> false

let test_request_bit_flips () =
  H.check_bit_flips ~what:"request" ~describe:Wire.describe_request
    ~encode:Wire.encode_request ~verdict:req_verdict ~allowed:damaged
    fixed_requests

let test_reply_bit_flips () =
  H.check_bit_flips ~what:"reply" ~describe:Wire.describe_reply
    ~encode:Wire.encode_reply ~verdict:rep_verdict ~allowed:damaged
    fixed_replies

let test_request_truncations () =
  H.check_truncations ~what:"request" ~describe:Wire.describe_request
    ~encode:Wire.encode_request ~verdict:req_verdict ~allowed:truncated
    fixed_requests

let test_reply_truncations () =
  H.check_truncations ~what:"reply" ~describe:Wire.describe_reply
    ~encode:Wire.encode_reply ~verdict:rep_verdict ~allowed:truncated
    fixed_replies

let test_length_lies () =
  H.check_length_lies ~what:"request" ~describe:Wire.describe_request
    ~encode:Wire.encode_request ~verdict:req_verdict ~allowed:damaged
    fixed_requests;
  H.check_length_lies ~what:"reply" ~describe:Wire.describe_reply
    ~encode:Wire.encode_reply ~verdict:rep_verdict ~allowed:damaged
    fixed_replies

let prop_request_random_flip =
  H.prop_random_flip ~name:"random request bit flip never accepted"
    ~arb:request_arb ~encode:Wire.encode_request ~verdict:req_verdict
    ~allowed:damaged

let prop_reply_random_flip =
  H.prop_random_flip ~name:"random reply bit flip never accepted"
    ~arb:reply_arb ~encode:Wire.encode_reply ~verdict:rep_verdict
    ~allowed:damaged

(* Attacks a single bit flip cannot reach: frames whose CRC is valid
   but whose payload violates the protocol. *)
let forge payload =
  let b = Buffer.create 32 in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (Crc32.string payload));
  Buffer.add_string b payload;
  Buffer.contents b

let test_valid_crc_forgeries () =
  let le64 v =
    String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))
  in
  let checks =
    [
      (* trailing byte after a complete Find payload: exact-consumption *)
      ("trailing payload bytes", "\x04" ^ le64 5 ^ "\x02\x00hi" ^ "\x00");
      ("unknown request tag", "\x09" ^ le64 5 ^ "\x02\x00hi");
      ("negative id", "\x04" ^ String.make 8 '\xff' ^ "\x02\x00hi");
      ("key overruns payload", "\x04" ^ le64 5 ^ "\xff\xffhi");
      ("scan count missing", "\x05" ^ le64 5 ^ "\x02\x00hi");
    ]
  in
  List.iter
    (fun (what, payload) ->
      match Wire.decode_request (forge payload) ~pos:0 with
      | Wire.Corrupt _ -> ()
      | Wire.Done _ -> Alcotest.failf "%s accepted" what
      | Wire.More -> Alcotest.failf "%s held as incomplete" what)
    checks;
  match Wire.decode_reply (forge ("\x10" ^ le64 1 ^ le64 3)) ~pos:0 with
  | Wire.Done ({ Wire.rid = 1; status = Wire.Applied 3 }, _) -> ()
  | _ -> Alcotest.fail "forge helper builds broken frames"

(* --- b. connection state machines ------------------------------------- *)

let prop_chunked_feed =
  QCheck.Test.make ~name:"any chunking decodes to the same requests"
    ~count:200
    QCheck.(
      pair
        (make Gen.(list_size (int_bound 12) request_gen))
        (make Gen.(int_bound 10_000)))
    (fun (rs, seed) ->
      let all = String.concat "" (List.map Wire.encode_request rs) in
      let rng = Rng.stream seed 0 in
      let r = Conn.reader ~decode:Wire.decode_request in
      let acc = ref [] in
      let i = ref 0 in
      let n = String.length all in
      while !i < n do
        let len = min (1 + Rng.int rng 7) (n - !i) in
        (match Conn.feed r ~pos:!i ~len all with
        | Ok got -> acc := List.rev_append got !acc
        | Error e -> Alcotest.failf "chunked feed rejected: %s" e);
        i := !i + len
      done;
      List.rev !acc = rs
      && Conn.reader_pending r = 0
      && Conn.reader_error r = None)

let test_reader_poisoned () =
  let r = Conn.reader ~decode:Wire.decode_request in
  (match Conn.feed r (String.make 20 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* Poisoned for good: even a valid frame is refused afterwards. *)
  match Conn.feed r (Wire.encode_request (List.hd fixed_requests)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned reader came back to life"

let decode_all_replies bytes =
  let r = Conn.reader ~decode:Wire.decode_reply in
  match Conn.feed r bytes with
  | Error e -> Alcotest.failf "reply stream corrupt: %s" e
  | Ok rs ->
    Alcotest.(check int) "no partial reply left over" 0 (Conn.reader_pending r);
    rs

let test_session_shed_order () =
  let s = Session.create ~window:3 () in
  let reqs =
    Array.init 10 (fun i -> { Wire.id = i; op = Wire.Find (Key.of_int i) })
  in
  let bytes =
    String.concat "" (Array.to_list (Array.map Wire.encode_request reqs))
  in
  (match Session.feed s bytes with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let batch = Session.take s in
  Alcotest.(check int) "round capped at the window" 3 (Array.length batch);
  Array.iteri
    (fun i (r : Wire.request) ->
      Alcotest.(check int) "oldest ids form the round" i r.Wire.id)
    batch;
  Alcotest.(check int) "rest of the queue drained for shedding" 0
    (Session.queued s);
  Session.complete s (Array.map (fun _ -> Wire.Applied 1) batch);
  Alcotest.(check int) "seven shed" 7 (Session.shed_count s);
  Alcotest.(check int) "ten replies queued" 10 (Session.replied_count s);
  let replies = decode_all_replies (Session.out_take s ~max:max_int) in
  Alcotest.(check int) "one reply per request" 10 (List.length replies);
  List.iteri
    (fun i (r : Wire.reply) ->
      Alcotest.(check int) "reply stream in request order" i r.Wire.rid;
      let want = if i < 3 then Wire.Applied 1 else Wire.Busy in
      if r.Wire.status <> want then
        Alcotest.failf "id %d: got %s" i (Wire.describe_reply r))
    replies;
  (* The session keeps going: the next round starts clean. *)
  (match
     Session.feed s (Wire.encode_request { Wire.id = 10; op = Wire.Find "x" })
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "next round formed" 1 (Array.length (Session.take s))

(* --- c. the net-pipeline sim scenario --------------------------------- *)

let seed = try int_of_string (Sys.getenv "EI_SEED") with Not_found -> 0x5eed

let mk_scenario name =
  match Sim.scenario name with
  | Some mk -> mk
  | None -> Alcotest.fail ("missing scenario " ^ name)

let test_scenario_registered () =
  Alcotest.(check bool) "net-pipeline registered" true
    (List.mem "net-pipeline" (Sim.scenario_names ()))

let test_net_pipeline_explored () =
  match Sched.explore ~seed ~rounds:25 (mk_scenario "net-pipeline") with
  | None -> ()
  | Some f ->
    Alcotest.fail
      (Printf.sprintf "net-pipeline failed at round %d: %s" f.Sched.round
         f.Sched.error)

let test_net_pipeline_enumerated () =
  let failure, distinct =
    Sched.enumerate ~fanout:3 ~depth:6 (mk_scenario "net-pipeline")
  in
  Alcotest.(check bool) "coverage" true (distinct >= 4);
  match failure with
  | None -> ()
  | Some f -> Alcotest.fail ("net-pipeline: " ^ f.Sched.error)

(* --- d. end-to-end over a Unix socket --------------------------------- *)

let safe_loader table =
  Olc.safe_loader ~key_len:8
    ~table_length:(fun () -> Table.length table)
    ~load:(Table.loader table)

let sock_path name =
  let p =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ei-test-net-%d-%s.sock" (Unix.getpid ()) name)
  in
  if Sys.file_exists p then Sys.remove p;
  p

let mk_router ~shards table =
  let mk i =
    Registry.make
      ~name:(Printf.sprintf "olc/%d" i)
      ~key_len:8 ~load:(safe_loader table) (Registry.Olc Olc.Olc_std)
  in
  (Shard.create (Array.init shards mk), mk)

(* Start fleet + server on a fresh unix socket, run [f server serve
   client], tear everything down (fault plan included) even on
   failure. *)
let with_server ?config ?serve_timeout_s ?(supervised = false) ?(shards = 2)
    name f =
  let table = Table.create ~key_len:8 () in
  let router, mk = mk_router ~shards table in
  let supervisor =
    if supervised then Some (Serve.default_supervisor ~table ~rebuild:mk)
    else None
  in
  let serve =
    Serve.start ?supervisor ?timeout_s:serve_timeout_s ~fault_prefix:"serve"
      router
  in
  let server =
    Server.start ?config ~serve ~table (Unix.ADDR_UNIX (sock_path name))
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Server.stop server;
      Serve.stop serve)
    (fun () ->
      let c = Client.connect (Server.addr server) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f server serve c))

let check_applied what want statuses =
  Alcotest.(check int)
    (what ^ ": reply count") (Array.length want) (Array.length statuses);
  Array.iteri
    (fun i st ->
      if st <> Wire.Applied want.(i) then
        Alcotest.failf "%s: op %d got %s, want applied %d" what i
          (Wire.describe_reply { Wire.rid = i; status = st })
          want.(i))
    statuses

let test_basic_ops () =
  with_server "basic" (fun _server _serve c ->
      let k i = Key.of_int i in
      (* Ops on one key land on one shard and apply in slot order; a
         scan races everything in its batch, so it gets its own. *)
      let b1 =
        Client.call c
          [|
            Wire.Insert (k 1);
            Wire.Insert (k 2);
            Wire.Insert (k 2);  (* duplicate: answered, not applied *)
            Wire.Find (k 1);
            Wire.Find (k 99);
          |]
      in
      (* Find returns the server-assigned tid: opaque but >= 0. *)
      let tid1 =
        match b1.(3) with
        | Wire.Applied tid when tid >= 0 -> tid
        | st ->
          Alcotest.failf "find after insert: %s"
            (Wire.describe_reply { Wire.rid = 3; status = st })
      in
      check_applied "batch1" [| 1; 1; 0; tid1; -1 |] b1;
      check_applied "batch2"
        [| 1; -1 |]
        (Client.call c [| Wire.Remove (k 1); Wire.Find (k 1) |]);
      (* Only k2 is left: the scan from the low key sees exactly it,
         and an update remaps it to a fresh row (a fresh tid). *)
      let b3 =
        Client.call c
          [| Wire.Scan (k 0, 10); Wire.Update (k 2); Wire.Find (k 2) |]
      in
      (match b3.(2) with
      | Wire.Applied tid when tid >= 0 -> ()
      | st ->
        Alcotest.failf "find after update: %s"
          (Wire.describe_reply { Wire.rid = 2; status = st }));
      if b3.(0) <> Wire.Applied 1 || b3.(1) <> Wire.Applied 1 then
        Alcotest.failf "scan/update: %s / %s"
          (Wire.describe_reply { Wire.rid = 0; status = b3.(0) })
          (Wire.describe_reply { Wire.rid = 1; status = b3.(1) }))

let test_pipelined_closed_loop () =
  with_server "closed" (fun _server _serve c ->
      let n = 500 in
      let stats =
        Client.run_closed c ~window:64 ~count:n ~op:(fun i ->
            Wire.Insert (Key.of_int i))
      in
      Alcotest.(check int) "all sent" n stats.Client.sent;
      Alcotest.(check int) "all applied (distinct keys)" n
        stats.Client.applied;
      Alcotest.(check int) "latencies recorded" n
        (Array.length stats.Client.lat_ns);
      Alcotest.(check bool) "p99 computed" true
        (Client.quantile stats.Client.lat_ns 0.99 > 0))

let test_key_length_rejected () =
  with_server "badkey" (fun _server _serve c ->
      let statuses =
        Client.call c
          [| Wire.Insert "short"; Wire.Find (Key.of_int 5); Wire.Insert "" |]
      in
      Alcotest.(check bool) "wrong-length key rejected, not dropped" true
        (statuses.(0) = Wire.Rejected && statuses.(2) = Wire.Rejected);
      Alcotest.(check bool) "valid op in the same round still served" true
        (statuses.(1) = Wire.Applied (-1)))

let test_backpressure_busy_and_no_starvation () =
  (* Every queue push sleeps 1 ms: rounds become slow, the flooder's
     600 pipelined requests pile up far past the window of 16, and the
     session must shed with [Busy] instead of buffering them all. *)
  Fault.configure ~seed:7 [ ("serve.queue.*.delay", 1.0) ];
  with_server
    ~config:{ Server.default_config with window = 16 }
    "busy"
    (fun server _serve c ->
      let n = 600 in
      let statuses =
        Client.call c (Array.init n (fun i -> Wire.Insert (Key.of_int i)))
      in
      let count st = Array.fold_left (fun a s -> if s = st then a + 1 else a) 0 statuses in
      let busy = count Wire.Busy in
      Alcotest.(check int) "exactly one reply each" n (Array.length statuses);
      Alcotest.(check bool)
        (Printf.sprintf "flooder shed with Busy (%d of %d)" busy n)
        true (busy > 0);
      (* A well-behaved client on a second connection is not starved
         behind the flooder's backlog. *)
      let c2 = Client.connect (Server.addr server) in
      Fun.protect
        ~finally:(fun () -> Client.close c2)
        (fun () ->
          match Client.call c2 [| Wire.Find (Key.of_int 1) |] with
          | [| Wire.Applied _ |] -> ()
          | [| st |] ->
            Alcotest.failf "well-behaved client got %s"
              (Wire.describe_reply { Wire.rid = 0; status = st })
          | _ -> Alcotest.fail "well-behaved client reply count"))

let test_timed_out_typed_not_dropped () =
  (* A 1 ms-per-push fleet against a microscopic exec deadline: slots
     expire to [Timed_out] — typed replies on a connection that stays
     up, not a dropped connection. *)
  Fault.configure ~seed:7 [ ("serve.queue.*.delay", 1.0) ];
  with_server
    ~config:
      { Server.default_config with window = 8; exec_timeout_s = Some 1e-6 }
    "timeout"
    (fun _server _serve c ->
      let statuses =
        Client.call c (Array.init 8 (fun i -> Wire.Insert (Key.of_int i)))
      in
      Alcotest.(check bool) "some slots timed out" true
        (Array.exists (fun s -> s = Wire.Timed_out) statuses);
      (* The connection survived: the probe must be answered with one
         typed reply.  (The microscopic deadline is server config, so
         the probe itself may well time out too — what matters is that
         it is answered, not dropped.) *)
      Fault.clear ();
      match Client.call c [| Wire.Find (Key.of_int 424242) |] with
      | [| (Wire.Applied _ | Wire.Rejected | Wire.Timed_out | Wire.Busy) |] ->
        ()
      | _ -> Alcotest.fail "connection did not survive the timeouts")

let test_exactly_one_reply_across_crashes () =
  (* Injected shard crashes with supervisor recovery while a client
     keeps pipelining: Client.call itself asserts the exactly-one-reply
     contract (it raises Protocol on a lost, duplicated or reordered
     reply, and blocks forever on a dropped one); the statuses must
     stay in the typed set with the connection alive throughout. *)
  Fault.configure ~seed:11 [ ("serve.crash", 0.02) ];
  with_server ~serve_timeout_s:0.2 ~supervised:true "crash"
    (fun _server serve c ->
      let sent = ref 0 in
      for round = 0 to 39 do
        let statuses =
          Client.call c
            (Array.init 25 (fun i ->
                 Wire.Insert (Key.of_int ((round * 25) + i))))
        in
        sent := !sent + Array.length statuses
      done;
      Alcotest.(check int) "every request answered exactly once" 1000 !sent;
      Alcotest.(check bool) "crashes actually happened and recovered" true
        (Serve.recoveries serve >= 1);
      Fault.clear ();
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_healthy () =
        if not (Serve.healthy serve) then
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "fleet never recovered"
          else begin
            Unix.sleepf 0.005;
            wait_healthy ()
          end
      in
      wait_healthy ();
      (* After the storm: the same connection still serves.  (A find
         may legally miss — a timed-out insert is allowed to be lost
         across a crash — but it must be answered.) *)
      match Client.call c [| Wire.Find (Key.of_int 0) |] with
      | [| Wire.Applied _ |] -> ()
      | _ -> Alcotest.fail "connection did not survive the crashes")

let test_graceful_stop_drains () =
  let table = Table.create ~key_len:8 () in
  let router, _ = mk_router ~shards:2 table in
  let serve = Serve.start router in
  let server = Server.start ~serve ~table (Unix.ADDR_UNIX (sock_path "stop")) in
  let c = Client.connect (Server.addr server) in
  let statuses =
    Client.call c (Array.init 50 (fun i -> Wire.Insert (Key.of_int i)))
  in
  Alcotest.(check int) "all answered before stop" 50 (Array.length statuses);
  (* Stop with the connection open: must not hang, and the client must
     see a clean EOF (all replies flushed, nothing torn). *)
  Server.stop server;
  Server.stop server;  (* idempotent *)
  (match Client.call c [| Wire.Find (Key.of_int 1) |] with
  | exception Client.Protocol _ -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  | _ -> Alcotest.fail "server answered after stop");
  Client.close c;
  Serve.stop serve

let () =
  Alcotest.run "net"
    [
      ( "codec",
        [
          qt prop_request_roundtrip;
          qt prop_reply_roundtrip;
          qt prop_request_random_flip;
          qt prop_reply_random_flip;
          Alcotest.test_case "every request bit flip refused" `Quick
            test_request_bit_flips;
          Alcotest.test_case "every reply bit flip refused" `Quick
            test_reply_bit_flips;
          Alcotest.test_case "every request truncation incomplete" `Quick
            test_request_truncations;
          Alcotest.test_case "every reply truncation incomplete" `Quick
            test_reply_truncations;
          Alcotest.test_case "length-field lies refused" `Quick
            test_length_lies;
          Alcotest.test_case "valid-CRC forgeries refused" `Quick
            test_valid_crc_forgeries;
        ] );
      ( "conn",
        [
          qt prop_chunked_feed;
          Alcotest.test_case "corrupt stream poisons the reader" `Quick
            test_reader_poisoned;
          Alcotest.test_case "ordered shed: batch acks then Busy" `Quick
            test_session_shed_order;
        ] );
      ( "sim",
        [
          Alcotest.test_case "net-pipeline registered" `Quick
            test_scenario_registered;
          Alcotest.test_case "net-pipeline survives random schedules" `Slow
            test_net_pipeline_explored;
          Alcotest.test_case "net-pipeline survives enumeration" `Slow
            test_net_pipeline_enumerated;
        ] );
      ( "server",
        [
          Alcotest.test_case "basic ops round-trip" `Quick test_basic_ops;
          Alcotest.test_case "closed-loop pipelining" `Quick
            test_pipelined_closed_loop;
          Alcotest.test_case "wrong key length rejected in place" `Quick
            test_key_length_rejected;
          Alcotest.test_case "backpressure: Busy, no cross-conn starvation"
            `Quick test_backpressure_busy_and_no_starvation;
          Alcotest.test_case "timeouts are typed replies" `Quick
            test_timed_out_typed_not_dropped;
          Alcotest.test_case "exactly one reply across shard crashes" `Slow
            test_exactly_one_reply_across_crashes;
          Alcotest.test_case "graceful stop drains and closes" `Quick
            test_graceful_stop_drains;
        ] );
    ]
