(* Unit tests for the ei_lint rules engine: each forbidden pattern is
   written to a temporary fixture file and must produce a diagnostic
   under the matching rule; a clean fixture must produce none.  The
   fixture's [display] path controls scope (poly-compare only fires
   under hot-path directories, no-abort only under lib/). *)

let with_fixture contents f =
  let path = Filename.temp_file "ei_lint_fixture" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let rules_firing ~display contents =
  with_fixture contents (fun path ->
      List.map
        (fun d -> d.Lint_rules.rule)
        (Lint_rules.lint_file ~path ~display))
  |> List.sort_uniq String.compare

let check_fires ~display ~rule contents =
  let rules = rules_firing ~display contents in
  if not (List.mem rule rules) then
    Alcotest.failf "expected rule %s to fire on %S; got [%s]" rule contents
      (String.concat "; " rules)

let check_clean ~display contents =
  match rules_firing ~display contents with
  | [] -> ()
  | rules ->
    Alcotest.failf "expected no findings on %S; got [%s]" contents
      (String.concat "; " rules)

let hot = "lib/btree/fixture.ml"

(* --- poly-compare ---------------------------------------------------- *)

let test_poly_compare () =
  (* Unannotated operands: could be strings, must go through Key.compare. *)
  check_fires ~display:hot ~rule:"poly-compare" "let f a b = a = b\n";
  check_fires ~display:hot ~rule:"poly-compare" "let f a b = a < b\n";
  check_fires ~display:hot ~rule:"poly-compare" "let f a b = compare a b\n";
  check_fires ~display:hot ~rule:"poly-compare" "let f a b = min a b\n";
  (* Structured operands are always findings, even against a literal. *)
  check_fires ~display:hot ~rule:"poly-compare"
    "let f x = x = (1, 2)\n";
  check_fires ~display:hot ~rule:"poly-compare"
    "let f x = x = \"abc\"\n";
  check_fires ~display:hot ~rule:"poly-compare" "let f x = x = Some 3\n";
  (* Evidently-immediate operands are fine. *)
  check_clean ~display:hot "let f a = a = 3\n";
  check_clean ~display:hot "let f (a : int) b = a = b\n";
  check_clean ~display:hot "let f s t = String.length s = String.length t\n";
  check_clean ~display:hot "let f s t = String.equal s t\n";
  check_clean ~display:hot "let f s t = Key.compare s t < 0\n";
  check_clean ~display:hot "let f s t = String.compare s t = 0 && Int.equal 1 1\n";
  (* let-bound immediates propagate through the environment. *)
  check_clean ~display:hot "let f s t =\n  let n = String.length s in\n  let m = String.length t in\n  n = m\n";
  (* Out of the hot path the rule is silent... *)
  check_clean ~display:"lib/workload/fixture.ml" "let f a b = a = b\n";
  (* ...but the scope covers all five hot directories. *)
  List.iter
    (fun dir ->
      check_fires ~display:(dir ^ "/fixture.ml") ~rule:"poly-compare"
        "let f a b = a = b\n")
    [ "lib/btree"; "lib/blindi"; "lib/core"; "lib/olc"; "lib/baselines" ]

(* --- hashtbl --------------------------------------------------------- *)

let test_hashtbl () =
  check_fires ~display:hot ~rule:"hashtbl" "let f k = Hashtbl.hash k\n";
  check_fires ~display:hot ~rule:"hashtbl" "let t = Hashtbl.create 16\n";
  check_fires ~display:"lib/harness/fixture.ml" ~rule:"hashtbl"
    "let f k = Stdlib.Hashtbl.hash k\n";
  (* The seeded replacement is the sanctioned route. *)
  check_clean ~display:hot "let f k = Ei_util.Fnv.hash k\n";
  check_clean ~display:hot "let t = Ei_util.Strtbl.create 16\n"

(* --- obj-magic ------------------------------------------------------- *)

let test_obj_magic () =
  check_fires ~display:hot ~rule:"obj-magic" "let f x = Obj.magic x\n";
  check_fires ~display:"lib/util/fixture.ml" ~rule:"obj-magic"
    "let f x = Stdlib.Obj.magic x\n"

(* --- no-abort -------------------------------------------------------- *)

let test_no_abort () =
  check_fires ~display:hot ~rule:"no-abort" "let f () = failwith \"boom\"\n";
  check_fires ~display:hot ~rule:"no-abort"
    "let f x = match x with Some y -> y | None -> assert false\n";
  (* Plain asserts of real conditions are allowed. *)
  check_clean ~display:hot "let f n = assert (n >= 0)\n";
  (* Raising a structured exception is the sanctioned route. *)
  check_clean ~display:hot
    "let f () = Ei_util.Invariant.impossible \"unreachable\"\n"

(* --- no-swallow ------------------------------------------------------ *)

let test_no_swallow () =
  check_fires ~display:hot ~rule:"no-swallow"
    "let f g = try g () with _ -> ()\n";
  (* A named-but-unused exception swallows just the same. *)
  check_fires ~display:hot ~rule:"no-swallow"
    "let f g = try g () with _e -> ()\n";
  check_fires ~display:"lib/shard/fixture.ml" ~rule:"no-swallow"
    "let loop f = while true do (try f () with _ -> ()) done\n";
  (* Matching a specific exception is deliberate, not swallowing. *)
  check_clean ~display:hot "let f g = try g () with Not_found -> ()\n";
  (* A catch-all that records or re-raises the failure is sanctioned. *)
  check_clean ~display:hot
    "let f g park = try g () with e -> park e; raise e\n";
  check_clean ~display:hot "let f g d = try g () with _ -> d\n"

(* --- no-print -------------------------------------------------------- *)

let test_no_print () =
  (* Direct std-stream writes from library code, applied or bare. *)
  check_fires ~display:hot ~rule:"no-print"
    "let f () = print_endline \"x\"\n";
  check_fires ~display:hot ~rule:"no-print" "let f = print_string\n";
  check_fires ~display:hot ~rule:"no-print"
    "let f n = Printf.printf \"%d\" n\n";
  check_fires ~display:hot ~rule:"no-print"
    "let f n = Format.eprintf \"%d\" n\n";
  check_fires ~display:"lib/shard/fixture.ml" ~rule:"no-print"
    "let f () = prerr_endline \"x\"\n";
  (* Formatting into strings is not printing. *)
  check_clean ~display:hot "let f n = Printf.sprintf \"%d\" n\n";
  check_clean ~display:hot "let f n = Format.asprintf \"%d\" n\n";
  (* The exposition layer and non-library code are out of scope. *)
  check_clean ~display:"lib/obs/metrics.ml"
    "let f () = print_endline \"x\"\n";
  check_clean ~display:"bin/ei_cli.ml" "let f () = print_endline \"x\"\n";
  check_clean ~display:"bench/fig6.ml" "let f n = Printf.printf \"%d\" n\n"

(* --- span-leak ------------------------------------------------------- *)

let obs = "lib/obs/fixture.ml"

let test_span_leak () =
  (* A start whose timestamp never reaches any call is a leak... *)
  check_fires ~display:obs ~rule:"span-leak"
    "let f () = let t = Trace.start () in ()\n";
  (* ...as is an emit that only covers one branch of a condition that
     does not inspect the timestamp itself. *)
  check_fires ~display:obs ~rule:"span-leak"
    "let f ev cond = let t = Trace.start () in\n\
    \  if cond then Trace.span ev ~start_ns:t 0\n";
  check_fires ~display:obs ~rule:"span-leak"
    "let f ev x = let t = Trace.start () in\n\
    \  match x with Some y -> Trace.span ev ~start_ns:t y | None -> ()\n";
  (* The fully-qualified start is caught too. *)
  check_fires ~display:obs ~rule:"span-leak"
    "let f () = let t = Ei_obs.Trace.start () in ()\n";
  (* Straight-line start/emit pairs are fine. *)
  check_clean ~display:obs
    "let f ev = let t = Trace.start () in Trace.span ev ~start_ns:t 0\n";
  (* The tracing-off gate: a branch on the timestamp itself only needs
     the then-arm to emit (start returns 0 when tracing is off). *)
  check_clean ~display:obs
    "let f ev = let t = Trace.start () in\n\
    \  if t > 0 then Trace.span ev ~start_ns:t 0\n";
  (* The exception bracket: both the value and exception cases emit. *)
  check_clean ~display:obs
    "let f body ev =\n\
    \  let t = Trace.start () in\n\
    \  match body () with\n\
    \  | () -> Trace.span ev ~start_ns:t 0\n\
    \  | exception e ->\n\
    \    Trace.span ev ~start_ns:t 0;\n\
    \    raise e\n"

(* --- syntax ---------------------------------------------------------- *)

let test_syntax () =
  check_fires ~display:hot ~rule:"syntax" "let f = (\n"

(* --- mli coverage ---------------------------------------------------- *)

let test_mli_coverage () =
  with_fixture "let x = 1\n" (fun path ->
      (* No sibling .mli: must fire. *)
      (match Lint_rules.check_mli_coverage ~ml_files:[ (path, path) ] with
      | [ d ] ->
        Alcotest.(check string) "rule" "mli-coverage" d.Lint_rules.rule
      | ds -> Alcotest.failf "expected 1 finding, got %d" (List.length ds));
      (* With the sibling present: clean. *)
      let mli = path ^ "i" in
      let oc = open_out mli in
      output_string oc "val x : int\n";
      close_out oc;
      Fun.protect
        ~finally:(fun () -> Sys.remove mli)
        (fun () ->
          Alcotest.(check int) "covered" 0
            (List.length (Lint_rules.check_mli_coverage ~ml_files:[ (path, path) ]))))

(* --- scope helpers --------------------------------------------------- *)

let test_in_hot_path () =
  List.iter
    (fun (path, expect) ->
      Alcotest.(check bool) path expect (Lint_rules.in_hot_path path))
    [
      ("lib/btree/btree.ml", true);
      ("lib/blindi/seqtree.ml", true);
      ("lib/core/elasticity.ml", true);
      ("lib/olc/btree_olc.ml", true);
      ("lib/baselines/radix.ml", true);
      ("lib/workload/ycsb.ml", false);
      ("lib/harness/registry.ml", false);
      ("bin/ei_cli.ml", false);
    ]

let test_in_quiet_lib () =
  List.iter
    (fun (path, expect) ->
      Alcotest.(check bool) path expect (Lint_rules.in_quiet_lib path))
    [
      ("lib/btree/btree.ml", true);
      ("lib/shard/serve.ml", true);
      ("lib/obs/metrics.ml", false);
      ("lib/obs/trace.ml", false);
      ("bin/ei_cli.ml", false);
      ("bench/fig6.ml", false);
    ]

let () =
  Alcotest.run "ei_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "hashtbl" `Quick test_hashtbl;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "no-abort" `Quick test_no_abort;
          Alcotest.test_case "no-swallow" `Quick test_no_swallow;
          Alcotest.test_case "no-print" `Quick test_no_print;
          Alcotest.test_case "span-leak" `Quick test_span_leak;
          Alcotest.test_case "syntax" `Quick test_syntax;
        ] );
      ( "scope",
        [
          Alcotest.test_case "mli coverage" `Quick test_mli_coverage;
          Alcotest.test_case "hot-path dirs" `Quick test_in_hot_path;
          Alcotest.test_case "quiet-lib dirs" `Quick test_in_quiet_lib;
        ] );
    ]
