(* Tests for the ei_obs observability layer: histogram bucketing and
   quantile edge cases, counter merging across concurrent domains
   (qcheck), trace-ring wraparound, the Chrome JSON exporter's
   structural invariants, span-context flow export, histogram
   exemplars, timeline delta telescoping, and the flight recorder. *)

module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace
module Ctx = Ei_obs.Ctx
module Timeline = Ei_obs.Timeline
module Flight = Ei_obs.Flight
module Invariant = Ei_util.Invariant
module Json = Ei_util.Mini_json

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i =
    i + n <= m && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  go 0

(* Alcotest runs test cases in-process and the registry is global:
   every case enables recording on entry and leaves the registry reset
   so cases stay order-independent. *)
let with_obs f =
  Metrics.set_enabled true;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Metrics.reset ();
      Trace.reset ())
    f

(* --- bucketing -------------------------------------------------------- *)

let test_buckets () =
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b
        (Metrics.bucket_of v))
    [
      (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9);
      (1024, 10); (max_int, 61);
    ];
  (* Bucket i covers [2^i, 2^(i+1)); its inclusive upper bound is the
     largest member, and the last bucket is unbounded. *)
  Alcotest.(check int) "upper 0" 1 (Metrics.bucket_upper 0);
  Alcotest.(check int) "upper 2" 7 (Metrics.bucket_upper 2);
  Alcotest.(check int) "upper 3" 15 (Metrics.bucket_upper 3);
  Alcotest.(check int) "upper of max_int's bucket" max_int
    (Metrics.bucket_upper 61);
  Alcotest.(check int) "upper last" max_int (Metrics.bucket_upper 62)

(* --- quantile edge cases ---------------------------------------------- *)

let test_quantile_empty () =
  with_obs (fun () ->
      let h = Metrics.histogram "test.empty_ns" in
      Alcotest.(check int) "count" 0 (Metrics.histogram_count h);
      Alcotest.(check int) "p50 of empty" 0 (Metrics.quantile h 0.5);
      Alcotest.(check int) "p999 of empty" 0 (Metrics.quantile h 0.999))

let test_quantile_single () =
  with_obs (fun () ->
      (* One sample: interpolation puts every quantile at the bucket's
         top, and the min/max watermark clamp pulls it back to the
         sample itself — 7 and 8 both report themselves, where the old
         bucket-upper-bound rule turned 8 into 15. *)
      let h = Metrics.histogram "test.single_ns" in
      Metrics.observe h 7;
      Alcotest.(check int) "count" 1 (Metrics.histogram_count h);
      Alcotest.(check int) "sum" 7 (Metrics.histogram_sum h);
      Alcotest.(check int) "min" 7 (Metrics.histogram_min h);
      Alcotest.(check int) "max" 7 (Metrics.histogram_max h);
      Alcotest.(check int) "p50" 7 (Metrics.quantile h 0.5);
      Alcotest.(check int) "p999" 7 (Metrics.quantile h 0.999);
      Metrics.reset_histogram h;
      Alcotest.(check int) "min after reset" 0 (Metrics.histogram_min h);
      Metrics.observe h 8;
      Alcotest.(check int) "p50 is the sample" 8 (Metrics.quantile h 0.5))

let test_quantile_boundaries () =
  with_obs (fun () ->
      (* 90 samples in bucket 0 (value 1) and 10 in bucket 9 (value
         1000): the p50 rank lands in the low bucket (clamped up to the
         min watermark 1), p99 interpolates 9/10 of the way through
         [512, 1023] (= 971), and p1.0 clamps to the max watermark
         1000 instead of the bucket top 1023. *)
      let h = Metrics.histogram "test.bounds_ns" in
      for _ = 1 to 90 do
        Metrics.observe h 1
      done;
      for _ = 1 to 10 do
        Metrics.observe h 1000
      done;
      Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
      Alcotest.(check int) "min" 1 (Metrics.histogram_min h);
      Alcotest.(check int) "max" 1000 (Metrics.histogram_max h);
      Alcotest.(check int) "p50" 1 (Metrics.quantile h 0.5);
      Alcotest.(check int) "p90 on boundary" 1 (Metrics.quantile h 0.9);
      Alcotest.(check int) "p99 interpolates" 971 (Metrics.quantile h 0.99);
      Alcotest.(check int) "p0 clamps to rank 1" 1 (Metrics.quantile h 0.0);
      Alcotest.(check int) "p1 clamps to the max watermark" 1000
        (Metrics.quantile h 1.0))

(* --- disabled fast path ----------------------------------------------- *)

let test_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.off" in
  let h = Metrics.histogram "test.off_ns" in
  Metrics.incr c;
  Metrics.add c 5;
  Metrics.observe h 42;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h);
  Trace.set_enabled false;
  let before = Trace.events () in
  Trace.emit (Trace.define ~cat:"test" "test.off_ev") 1 2;
  Alcotest.(check int) "ring untouched" before (Trace.events ())

(* --- concurrent counter merge (qcheck) -------------------------------- *)

let test_concurrent_merge =
  QCheck.Test.make ~count:20 ~name:"4-domain counter adds merge to the sum"
    QCheck.(quad (0 -- 500) (0 -- 500) (0 -- 500) (0 -- 500))
    (fun (a, b, c, d) ->
      Metrics.set_enabled true;
      let counter = Metrics.counter "test.concurrent" in
      let h = Metrics.histogram "test.concurrent_ns" in
      Metrics.reset ();
      let work n () =
        for _ = 1 to n do
          Metrics.incr counter;
          Metrics.observe h 3
        done
      in
      (* One bump stream from this domain, three from spawned domains:
         four distinct domain ids hitting the sharded cells at once. *)
      let doms = List.map (fun n -> Domain.spawn (work n)) [ b; c; d ] in
      work a ();
      List.iter Domain.join doms;
      let total = a + b + c + d in
      let ok =
        Metrics.counter_value counter = total
        && Metrics.histogram_count h = total
        && Metrics.histogram_sum h = 3 * total
      in
      Metrics.set_enabled false;
      ok)

(* --- trace ring wraparound -------------------------------------------- *)

let test_ring_wraparound () =
  with_obs (fun () ->
      Trace.set_ring_capacity 64;
      let ev = Trace.define ~cat:"test" ~arg0:"i" "test.wrap" in
      (* A fresh domain gets a fresh ring at the new capacity; 100
         emissions into a 64-slot ring must retain exactly the newest
         64 (payloads 36..99), in write order. *)
      Domain.join
        (Domain.spawn (fun () ->
             for i = 0 to 99 do
               Trace.emit ev i (2 * i)
             done));
      let mine =
        List.rev
          (Trace.fold_events
             (fun acc ~domain:_ ~ts:_ ~id ~a ~b ->
               if id = ev then (a, b) :: acc else acc)
             [])
      in
      Alcotest.(check int) "retained" 64 (List.length mine);
      List.iteri
        (fun idx (a, b) ->
          Alcotest.(check int) "payload a" (36 + idx) a;
          Alcotest.(check int) "payload b" (2 * (36 + idx)) b)
        mine;
      Trace.set_ring_capacity 32768)

(* --- exporter ---------------------------------------------------------- *)

let test_export_json () =
  with_obs (fun () ->
      let ev = Trace.define ~cat:"test" ~arg0:"x" "test.export" in
      let sp = Trace.define ~span:true ~arg1:"n" ~cat:"test" "test.span" in
      Trace.emit ev 1 2;
      let t0 = Trace.start () in
      Trace.emit ev 3 4;
      Trace.span sp ~start_ns:t0 7;
      let json = Trace.export_json () in
      let has = contains json in
      Alcotest.(check bool) "traceEvents" true (has "\"traceEvents\"");
      Alcotest.(check bool) "instant" true (has "\"test.export\"");
      Alcotest.(check bool) "span as X" true (has "\"ph\": \"X\"");
      Alcotest.(check bool) "span name" true (has "\"test.span\"");
      Alcotest.(check bool) "thread metadata" true (has "\"thread_name\""))

(* --- span-context flow export ------------------------------------------ *)

let test_export_flow () =
  with_obs (fun () ->
      (* Two spans under one minted trace — a root and a child — must
         come out of the exporter as a Perfetto flow: the slices carry
         trace/span/parent args and the flow chain opens with "s" and
         closes with "f". *)
      let sp = Trace.define ~span:true ~arg1:"n" ~cat:"test" "test.flow" in
      let root = Ctx.mint () in
      Ctx.set root;
      let t0 = Trace.start () in
      Trace.span sp ~start_ns:t0 1;
      Ctx.set (Ctx.child root);
      let t1 = Trace.start () in
      Trace.span sp ~start_ns:t1 2;
      Ctx.clear ();
      let json = Trace.export_json () in
      let has = contains json in
      Alcotest.(check bool) "trace arg" true
        (has (Printf.sprintf "\"trace\": %d" root.Ctx.trace));
      Alcotest.(check bool) "flow cat" true (has "\"cat\": \"flow\"");
      Alcotest.(check bool) "flow start" true (has "\"ph\": \"s\"");
      Alcotest.(check bool) "flow finish" true (has "\"ph\": \"f\""))

(* --- exemplars --------------------------------------------------------- *)

let test_exemplar_roundtrip () =
  with_obs (fun () ->
      let h = Metrics.histogram "test.exemplar_ns" in
      Metrics.observe h 100;
      Alcotest.(check int) "no ambient ctx, no exemplar" 0
        (Metrics.quantile_exemplar h 0.999);
      let root = Ctx.mint () in
      Ctx.set root;
      Metrics.observe h 5000;
      Ctx.clear ();
      (* The slow sample landed in a higher bucket than the plain one:
         the tail quantile's exemplar is the minted trace, the median's
         bucket saw no traced hit. *)
      Alcotest.(check int) "p999 exemplar is the traced op" root.Ctx.trace
        (Metrics.quantile_exemplar h 0.999);
      Alcotest.(check int) "p50 exemplar empty" 0
        (Metrics.quantile_exemplar h 0.5);
      Alcotest.(check bool) "exemplar survives into dump_json" true
        (contains (Metrics.dump_json ()) "\"p999_exemplar\""))

(* --- timeline delta telescoping (qcheck) ------------------------------- *)

let test_timeline_deltas =
  QCheck.Test.make ~count:10
    ~name:"timeline frame deltas telescope to final counters (4 domains)"
    QCheck.(quad (0 -- 300) (0 -- 300) (0 -- 300) (0 -- 300))
    (fun (a, b, c, d) ->
      Metrics.set_enabled true;
      Timeline.set_enabled true;
      Metrics.reset ();
      Timeline.reset ();
      let counter = Metrics.counter "test.tl" in
      let h = Metrics.histogram "test.tl_ns" in
      let work n () =
        for _ = 1 to n do
          Metrics.incr counter;
          Metrics.observe h 5
        done
      in
      (* Captures race the three spawned bump streams: whatever window
         boundaries they cut, the per-frame deltas must still sum to
         the final totals. *)
      Timeline.capture ~label:"start" ();
      let doms = List.map (fun n -> Domain.spawn (work n)) [ b; c; d ] in
      Timeline.capture ~label:"mid" ();
      work a ();
      List.iter Domain.join doms;
      Timeline.capture ~label:"end" ();
      let total = a + b + c + d in
      let frames = Timeline.frames () in
      let counter_sum =
        List.fold_left
          (fun acc fr ->
            acc
            + Option.value ~default:0
                (List.assoc_opt "test.tl" fr.Timeline.fr_counters))
          0 frames
      in
      let hist_sum =
        List.fold_left
          (fun acc fr ->
            acc
            +
            match List.assoc_opt "test.tl_ns" fr.Timeline.fr_hists with
            | Some hf -> hf.Timeline.hf_count
            | None -> 0)
          0 frames
      in
      Timeline.set_enabled false;
      Metrics.set_enabled false;
      counter_sum = total && hist_sum = total)

(* --- flight recorder --------------------------------------------------- *)

let test_flight_trigger () =
  with_obs (fun () ->
      Timeline.set_enabled true;
      Timeline.reset ();
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ei-flight-test-%d" (Unix.getpid ()))
      in
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Flight.arm ~dir ();
      Fun.protect
        ~finally:(fun () ->
          Flight.disarm ();
          Timeline.set_enabled false)
        (fun () ->
          let sp = Trace.define ~span:true ~arg1:"n" ~cat:"test" "test.breach" in
          Ctx.set (Ctx.mint ());
          let t0 = Trace.start () in
          Trace.span sp ~start_ns:t0 1;
          Ctx.clear ();
          Timeline.capture ~label:"pre-breach" ();
          (try Invariant.broken "planted breach" with Invariant.Broken _ -> ());
          match Flight.last_dump () with
          | None -> Alcotest.fail "no flight dump written"
          | Some path -> (
            let ic = open_in_bin path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            match Json.parse s with
            | Error e -> Alcotest.failf "unparseable flight dump: %s" e
            | Ok doc ->
              let str m = Option.bind (Json.member m doc) Json.as_str in
              Alcotest.(check (option string))
                "reason" (Some "invariant-broken") (str "reason");
              Alcotest.(check (option string))
                "detail" (Some "planted breach") (str "detail");
              let events =
                Option.value ~default:[]
                  (Option.bind (Json.member "trace" doc) Json.as_list)
              in
              let breach =
                List.find_opt
                  (fun ev ->
                    match Option.bind (Json.member "name" ev) Json.as_str with
                    | Some "test.breach" -> true
                    | _ -> false)
                  events
              in
              Alcotest.(check bool)
                "breaching span present in the trace section" true
                (Option.is_some breach);
              let traced =
                Option.bind breach (fun ev ->
                    Option.bind (Json.member "trace" ev) Json.as_int)
              in
              Alcotest.(check bool)
                "breaching span carries its context" true
                (match traced with Some t -> t > 0 | None -> false);
              let frames =
                Option.value ~default:[]
                  (Option.bind (Json.member "timeline" doc) Json.as_list)
              in
              Alcotest.(check bool) "timeline frames present" true
                (frames <> []))))

let () =
  Alcotest.run "ei_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "buckets" `Quick test_buckets;
          Alcotest.test_case "quantile: empty" `Quick test_quantile_empty;
          Alcotest.test_case "quantile: single sample" `Quick
            test_quantile_single;
          Alcotest.test_case "quantile: bucket boundaries" `Quick
            test_quantile_boundaries;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "exemplar round-trip" `Quick
            test_exemplar_roundtrip;
          QCheck_alcotest.to_alcotest test_concurrent_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "chrome export" `Quick test_export_json;
          Alcotest.test_case "flow export" `Quick test_export_flow;
        ] );
      ( "timeline",
        [ QCheck_alcotest.to_alcotest test_timeline_deltas ] );
      ( "flight",
        [ Alcotest.test_case "trigger writes a dump" `Quick test_flight_trigger ] );
    ]
