(* Tests for the ei_obs observability layer: histogram bucketing and
   quantile edge cases, counter merging across concurrent domains
   (qcheck), trace-ring wraparound, and the Chrome JSON exporter's
   structural invariants. *)

module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace

(* Alcotest runs test cases in-process and the registry is global:
   every case enables recording on entry and leaves the registry reset
   so cases stay order-independent. *)
let with_obs f =
  Metrics.set_enabled true;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Metrics.reset ();
      Trace.reset ())
    f

(* --- bucketing -------------------------------------------------------- *)

let test_buckets () =
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b
        (Metrics.bucket_of v))
    [
      (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9);
      (1024, 10); (max_int, 61);
    ];
  (* Bucket i covers [2^i, 2^(i+1)); its inclusive upper bound is the
     largest member, and the last bucket is unbounded. *)
  Alcotest.(check int) "upper 0" 1 (Metrics.bucket_upper 0);
  Alcotest.(check int) "upper 2" 7 (Metrics.bucket_upper 2);
  Alcotest.(check int) "upper 3" 15 (Metrics.bucket_upper 3);
  Alcotest.(check int) "upper of max_int's bucket" max_int
    (Metrics.bucket_upper 61);
  Alcotest.(check int) "upper last" max_int (Metrics.bucket_upper 62)

(* --- quantile edge cases ---------------------------------------------- *)

let test_quantile_empty () =
  with_obs (fun () ->
      let h = Metrics.histogram "test.empty_ns" in
      Alcotest.(check int) "count" 0 (Metrics.histogram_count h);
      Alcotest.(check int) "p50 of empty" 0 (Metrics.quantile h 0.5);
      Alcotest.(check int) "p999 of empty" 0 (Metrics.quantile h 0.999))

let test_quantile_single () =
  with_obs (fun () ->
      (* One sample: every quantile is that sample's bucket upper bound.
         7 sits in bucket 2 ([4,8)) whose upper bound is itself 7;
         8 sits in bucket 3 ([8,16)) and reports 15. *)
      let h = Metrics.histogram "test.single_ns" in
      Metrics.observe h 7;
      Alcotest.(check int) "count" 1 (Metrics.histogram_count h);
      Alcotest.(check int) "sum" 7 (Metrics.histogram_sum h);
      Alcotest.(check int) "p50" 7 (Metrics.quantile h 0.5);
      Alcotest.(check int) "p999" 7 (Metrics.quantile h 0.999);
      Metrics.reset_histogram h;
      Metrics.observe h 8;
      Alcotest.(check int) "p50 rounded up" 15 (Metrics.quantile h 0.5))

let test_quantile_boundaries () =
  with_obs (fun () ->
      (* 90 samples in bucket 0 (value 1) and 10 in bucket 9 (value
         1000): the p50 rank lands in the low bucket, p99 in the high
         one; p90 sits exactly on the bucket boundary rank (rank 90 =
         the last low-bucket sample). *)
      let h = Metrics.histogram "test.bounds_ns" in
      for _ = 1 to 90 do
        Metrics.observe h 1
      done;
      for _ = 1 to 10 do
        Metrics.observe h 1000
      done;
      Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
      Alcotest.(check int) "p50" 1 (Metrics.quantile h 0.5);
      Alcotest.(check int) "p90 on boundary" 1 (Metrics.quantile h 0.9);
      Alcotest.(check int) "p99" 1023 (Metrics.quantile h 0.99);
      Alcotest.(check int) "p0 clamps to rank 1" 1 (Metrics.quantile h 0.0);
      Alcotest.(check int) "p1 is the max bucket" 1023
        (Metrics.quantile h 1.0))

(* --- disabled fast path ----------------------------------------------- *)

let test_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.off" in
  let h = Metrics.histogram "test.off_ns" in
  Metrics.incr c;
  Metrics.add c 5;
  Metrics.observe h 42;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h);
  Trace.set_enabled false;
  let before = Trace.events () in
  Trace.emit (Trace.define ~cat:"test" "test.off_ev") 1 2;
  Alcotest.(check int) "ring untouched" before (Trace.events ())

(* --- concurrent counter merge (qcheck) -------------------------------- *)

let test_concurrent_merge =
  QCheck.Test.make ~count:20 ~name:"4-domain counter adds merge to the sum"
    QCheck.(quad (0 -- 500) (0 -- 500) (0 -- 500) (0 -- 500))
    (fun (a, b, c, d) ->
      Metrics.set_enabled true;
      let counter = Metrics.counter "test.concurrent" in
      let h = Metrics.histogram "test.concurrent_ns" in
      Metrics.reset ();
      let work n () =
        for _ = 1 to n do
          Metrics.incr counter;
          Metrics.observe h 3
        done
      in
      (* One bump stream from this domain, three from spawned domains:
         four distinct domain ids hitting the sharded cells at once. *)
      let doms = List.map (fun n -> Domain.spawn (work n)) [ b; c; d ] in
      work a ();
      List.iter Domain.join doms;
      let total = a + b + c + d in
      let ok =
        Metrics.counter_value counter = total
        && Metrics.histogram_count h = total
        && Metrics.histogram_sum h = 3 * total
      in
      Metrics.set_enabled false;
      ok)

(* --- trace ring wraparound -------------------------------------------- *)

let test_ring_wraparound () =
  with_obs (fun () ->
      Trace.set_ring_capacity 64;
      let ev = Trace.define ~cat:"test" ~arg0:"i" "test.wrap" in
      (* A fresh domain gets a fresh ring at the new capacity; 100
         emissions into a 64-slot ring must retain exactly the newest
         64 (payloads 36..99), in write order. *)
      Domain.join
        (Domain.spawn (fun () ->
             for i = 0 to 99 do
               Trace.emit ev i (2 * i)
             done));
      let mine =
        List.rev
          (Trace.fold_events
             (fun acc ~domain:_ ~ts:_ ~id ~a ~b ->
               if id = ev then (a, b) :: acc else acc)
             [])
      in
      Alcotest.(check int) "retained" 64 (List.length mine);
      List.iteri
        (fun idx (a, b) ->
          Alcotest.(check int) "payload a" (36 + idx) a;
          Alcotest.(check int) "payload b" (2 * (36 + idx)) b)
        mine;
      Trace.set_ring_capacity 32768)

(* --- exporter ---------------------------------------------------------- *)

let test_export_json () =
  with_obs (fun () ->
      let ev = Trace.define ~cat:"test" ~arg0:"x" "test.export" in
      let sp = Trace.define ~span:true ~arg1:"n" ~cat:"test" "test.span" in
      Trace.emit ev 1 2;
      let t0 = Trace.start () in
      Trace.emit ev 3 4;
      Trace.span sp ~start_ns:t0 7;
      let json = Trace.export_json () in
      let has needle =
        let n = String.length needle and m = String.length json in
        let rec go i =
          i + n <= m && (String.equal (String.sub json i n) needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "traceEvents" true (has "\"traceEvents\"");
      Alcotest.(check bool) "instant" true (has "\"test.export\"");
      Alcotest.(check bool) "span as X" true (has "\"ph\": \"X\"");
      Alcotest.(check bool) "span name" true (has "\"test.span\"");
      Alcotest.(check bool) "thread metadata" true (has "\"thread_name\""))

let () =
  Alcotest.run "ei_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "buckets" `Quick test_buckets;
          Alcotest.test_case "quantile: empty" `Quick test_quantile_empty;
          Alcotest.test_case "quantile: single sample" `Quick
            test_quantile_single;
          Alcotest.test_case "quantile: bucket boundaries" `Quick
            test_quantile_boundaries;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          QCheck_alcotest.to_alcotest test_concurrent_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "chrome export" `Quick test_export_json;
        ] );
    ]
