(* Regression tests for the fault-injection substrate and the
   self-healing serving layer.

   a. Fault sites: seed-pure fire sequences, wildcard plan matching,
      plan parsing.
   b. Mpsc_queue close race: a producer blocked on a full queue must
      wake and raise Closed when the consumer closes — the original
      close/push race — and admitted elements stay poppable.
   c. split_bounds edge cases: empty fleet, zero-size fleet, a single
      hot shard, min_fraction floors summing past the bound, and the
      every-bound-at-least-one clamp.
   d. Supervisor crash recovery: injected shard-domain crashes under a
      live insert workload; every acknowledged insert must be present
      after the last recovery (zero lost acks) and the recovery count
      must be visible in the log.
   e. Chaos determinism: two equal-seed soak runs agree byte-for-byte
      on the fault schedule and the recovery sequence. *)

module Fault = Ei_fault.Fault
module Mpsc = Ei_shard.Mpsc_queue
module Serve = Ei_shard.Serve
module Shard = Ei_shard.Shard
module Chaos = Ei_chaos.Chaos
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Olc = Ei_olc.Btree_olc
module Key = Ei_util.Key

(* --- a. fault sites -------------------------------------------------- *)

let fire_seq site n = List.init n (fun _ -> Fault.fire site)

let test_fault_streams () =
  let s = Fault.site "test.stream.a" in
  Fault.configure ~seed:7 [ ("test.stream", 0.3) ];
  let first = fire_seq s 200 in
  (* Re-seeding replays the exact same draw sequence. *)
  Fault.configure ~seed:7 [ ("test.stream", 0.3) ];
  Alcotest.(check (list bool)) "same seed, same schedule" first (fire_seq s 200);
  (* A different seed diverges (200 draws at p = 0.3 cannot all agree). *)
  Fault.configure ~seed:8 [ ("test.stream", 0.3) ];
  Alcotest.(check bool) "different seed diverges" false
    (List.equal Bool.equal first (fire_seq s 200));
  Fault.clear ();
  Alcotest.(check bool) "inert without a plan" false
    (List.exists Fun.id (fire_seq s 200))

let test_fault_wildcard () =
  let drop3 = Fault.site "test.queue.shard3.drop" in
  let drop5 = Fault.site "test.queue.shard5.drop" in
  let delay3 = Fault.site "test.queue.shard3.delay" in
  Fault.configure ~seed:1 [ ("test.queue.*.drop", 1.0) ];
  Alcotest.(check bool) "wildcard arms shard3.drop" true (Fault.fire drop3);
  Alcotest.(check bool) "wildcard arms shard5.drop" true (Fault.fire drop5);
  Alcotest.(check bool) "wildcard leaves delay inert" false (Fault.fire delay3);
  (* A prefix key arms every site below it. *)
  Fault.configure ~seed:1 [ ("test.queue", 1.0) ];
  Alcotest.(check bool) "prefix arms the subtree" true (Fault.fire delay3);
  Fault.clear ()

let test_parse_plan () =
  (match Fault.parse_plan "a.b=0.5,c=1" with
  | Ok [ ("a.b", p); ("c", q) ] ->
    Alcotest.(check (float 0.)) "p" 0.5 p;
    Alcotest.(check (float 0.)) "q" 1.0 q
  | Ok _ -> Alcotest.fail "wrong bindings"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse_plan "a=1.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted probability > 1");
  match Fault.parse_plan "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a binding without a value"

(* --- b. queue close race --------------------------------------------- *)

let test_queue_close_race () =
  let q : int Mpsc.t = Mpsc.create ~capacity:1 () in
  Mpsc.push q 1;
  (* The queue is full: this producer must block, then be woken by
     [close] and raise Closed rather than wait forever. *)
  let producer =
    Domain.spawn (fun () ->
        try
          Mpsc.push q 2;
          false
        with Mpsc.Closed -> true)
  in
  Unix.sleepf 0.05;
  Mpsc.close q;
  Alcotest.(check bool) "blocked producer woke with Closed" true
    (Domain.join producer);
  Alcotest.(check bool) "closed" true (Mpsc.is_closed q);
  (* Elements admitted before the close stay poppable; a drained closed
     queue answers [] (the consumer's termination signal). *)
  Alcotest.(check (list int)) "admitted element drains" [ 1 ]
    (Mpsc.pop_batch q ~max:8);
  Alcotest.(check (list int)) "drained closed queue answers []" []
    (Mpsc.pop_batch q ~max:8);
  (* Pushing after close fails fast. *)
  match Mpsc.push q 3 with
  | () -> Alcotest.fail "push after close succeeded"
  | exception Mpsc.Closed -> ()

(* --- c. split_bounds edge cases -------------------------------------- *)

let cfg ~global_bound ~min_fraction =
  { (Serve.default_coordinator ~global_bound) with min_fraction }

let test_split_bounds () =
  let check_arr name expect got = Alcotest.(check (array int)) name expect got in
  (* Empty fleet. *)
  check_arr "empty fleet" [||]
    (Serve.split_bounds (cfg ~global_bound:1024 ~min_fraction:0.5) ~sizes:[||]);
  (* Zero-size fleet: even split. *)
  check_arr "zero sizes split evenly"
    [| 256; 256; 256; 256 |]
    (Serve.split_bounds
       (cfg ~global_bound:1024 ~min_fraction:0.5)
       ~sizes:[| 0; 0; 0; 0 |]);
  (* Single hot shard: demand weight flows to it, the cold shards sit
     on the min_fraction floor. *)
  check_arr "single hot shard"
    [| 640; 128; 128; 128 |]
    (Serve.split_bounds
       (cfg ~global_bound:1024 ~min_fraction:0.5)
       ~sizes:[| 1000; 0; 0; 0 |]);
  (* min_fraction floors summing past the bound: every shard is floored,
     renormalisation scales the floors back inside the bound (an even
     split — no shard may starve, no fleet may exceed the budget). *)
  check_arr "floors past the bound renormalise"
    [| 256; 256; 256; 256 |]
    (Serve.split_bounds
       (cfg ~global_bound:1024 ~min_fraction:3.0)
       ~sizes:[| 100; 0; 0; 0 |]);
  (* Degenerate budget: every bound is clamped to at least 1 so no
     shard ever receives a zero (or negative) bound. *)
  check_arr "bounds never drop below 1" [| 1; 1; 1 |]
    (Serve.split_bounds (cfg ~global_bound:1 ~min_fraction:0.5)
       ~sizes:[| 0; 0; 0 |]);
  (* Skewed but bounded: the sum never exceeds the budget (truncation
     may undershoot by at most one byte per shard). *)
  let sizes = [| 7; 7_000; 70; 700_000 |] in
  let bounds =
    Serve.split_bounds (cfg ~global_bound:100_000 ~min_fraction:0.25) ~sizes
  in
  let sum = Array.fold_left ( + ) 0 bounds in
  Alcotest.(check bool) "sum within budget" true (sum <= 100_000);
  Alcotest.(check bool) "sum close to budget" true (sum >= 100_000 - 4);
  Alcotest.(check bool) "hottest shard gets the largest bound" true
    (bounds.(3) = Array.fold_left max 0 bounds)

(* --- d. supervisor crash recovery ------------------------------------ *)

let safe_loader table =
  Olc.safe_loader ~key_len:8
    ~table_length:(fun () -> Table.length table)
    ~load:(Table.loader table)

let rec wait_healthy serve =
  if not (Serve.healthy serve) then begin
    Unix.sleepf 0.001;
    wait_healthy serve
  end

let test_supervisor_recovery () =
  let shards = 2 in
  let n = 600 in
  let table = Table.create ~initial_capacity:(4 * n) ~key_len:8 () in
  let mk i =
    Registry.make
      ~name:(Printf.sprintf "olc/%d" i)
      ~key_len:8 ~load:(safe_loader table) (Registry.Olc Olc.Olc_std)
  in
  let router = Shard.create (Array.init shards mk) in
  Fault.configure ~seed:11 [ ("serve.crash", 0.01) ];
  let serve =
    Serve.start
      ~supervisor:(Serve.default_supervisor ~table ~rebuild:mk)
      ~fault_prefix:"serve" ~timeout_s:0.2 router
  in
  let keys = Array.init n (fun i -> Key.of_int (i * 7919)) in
  let tids = Array.map (Table.append table) keys in
  (* Insert every key until acknowledged.  Applied 0 (duplicate) counts:
     a timed-out attempt may have landed before its shard crashed. *)
  for i = 0 to n - 1 do
    let acked = ref false in
    while not !acked do
      match (Serve.exec serve [| Serve.Insert (keys.(i), tids.(i)) |]).(0) with
      | Serve.Applied _ -> acked := true
      | Serve.Rejected -> ()
      | Serve.Timed_out -> wait_healthy serve
    done
  done;
  Fault.clear ();
  wait_healthy serve;
  let recoveries = Serve.recoveries serve in
  let log = Serve.recovery_log serve in
  (* Zero lost acknowledged writes: every acked insert must be found
     with its tid after the crashes and rebuilds. *)
  let lost = ref 0 in
  let i = ref 0 in
  while !i < n do
    let len = min 64 (n - !i) in
    let ops = Array.init len (fun j -> Serve.Find keys.(!i + j)) in
    Array.iteri
      (fun j out ->
        match out with
        | Serve.Applied tid when tid = tids.(!i + j) -> ()
        | _ -> incr lost)
      (Serve.exec serve ops);
    i := !i + len
  done;
  Serve.stop serve;
  Alcotest.(check int) "zero lost acknowledged writes" 0 !lost;
  Alcotest.(check bool) "crashes actually happened and recovered" true
    (recoveries >= 1);
  Alcotest.(check int) "recovery log matches the counter" recoveries
    (List.length log);
  Alcotest.(check int) "count reconciles" n (Shard.count router)

(* --- e. chaos determinism -------------------------------------------- *)

let test_chaos_determinism () =
  let config = { (Chaos.default_config ~seed:123) with Chaos.scale = 0.05 } in
  let r1 = Chaos.run config in
  let r2 = Chaos.run config in
  Alcotest.(check bool) "first run ok" true (Chaos.ok r1);
  Alcotest.(check bool) "second run ok" true (Chaos.ok r2);
  Alcotest.(check string) "equal seeds, equal schedule and recoveries"
    (Chaos.schedule_digest r1) (Chaos.schedule_digest r2);
  Alcotest.(check int) "equal outcome counts" r1.Chaos.applied r2.Chaos.applied

let () =
  Alcotest.run "ei_fault"
    [
      ( "sites",
        [
          Alcotest.test_case "seed-pure streams" `Quick test_fault_streams;
          Alcotest.test_case "wildcard plans" `Quick test_fault_wildcard;
          Alcotest.test_case "plan parsing" `Quick test_parse_plan;
        ] );
      ( "queue",
        [ Alcotest.test_case "close race" `Quick test_queue_close_race ] );
      ( "coordinator",
        [ Alcotest.test_case "split_bounds edges" `Quick test_split_bounds ] );
      ( "supervisor",
        [
          Alcotest.test_case "crash recovery, zero lost acks" `Quick
            test_supervisor_recovery;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "equal-seed runs replay exactly" `Quick
            test_chaos_determinism;
        ] );
    ]
