(* Clean fixture: annotated state, balanced locks, a yielding retry
   loop and a CAS-free counter.  Must produce zero findings. *)

type state = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable ready : bool [@ei.guarded_by "lock"];
  gen : int Atomic.t;
}

let make () =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    ready = false;
    gen = Atomic.make 0;
  }

let signal st =
  Mutex.lock st.lock;
  st.ready <- true;
  Condition.signal st.cond;
  Mutex.unlock st.lock

let rec await st =
  Mutex.lock st.lock;
  let r =
    if st.ready then true
    else begin
      Condition.wait st.cond st.lock;
      false
    end
  in
  Mutex.unlock st.lock;
  if r then () else await st

let tick st = ignore (Atomic.fetch_and_add st.gen 1)
