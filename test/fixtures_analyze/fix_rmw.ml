(* Planted rule-4 violation: atomic read-modify-write outside any
   lock-held region (a lost-update window). *)

let bump (a : int Atomic.t) = Atomic.set a (Atomic.get a + 1) (* finding *)

let bump_locked (m : Mutex.t) (a : int Atomic.t) =
  Mutex.lock m;
  Atomic.set a (Atomic.get a + 1);
  (* clean: the lock serialises the load-store pair *)
  Mutex.unlock m

let bump_cas (a : int Atomic.t) = ignore (Atomic.fetch_and_add a 1)
(* clean: single atomic instruction *)
