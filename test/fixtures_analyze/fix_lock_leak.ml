(* Planted rule-2 violations around a local version-lock protocol
   (same names as the OLC primitives, so the walk tracks them). *)

let try_upgrade (a : int Atomic.t) =
  let v = Atomic.get a in
  v land 1 = 0 && Atomic.compare_and_set a v (v lor 1)

let write_unlock (a : int Atomic.t) = Atomic.set a 0

let leak a work =
  if try_upgrade a then work ()
(* finding: lock held on the then-path at function exit *)

let raise_locked a n =
  if try_upgrade a then begin
    if n = 99 then failwith "corrupt";  (* finding: raises while locked *)
    write_unlock a
  end

let balanced a work =
  if try_upgrade a then begin
    work ();
    write_unlock a
  end
(* clean: released on every path *)

let mutex_leak (m : Mutex.t) cond =
  Mutex.lock m;
  if cond then Mutex.unlock m
(* finding: unlocked on one path only *)
