(* Planted rule-3 violations: domain-crossing retry loops without a
   yield site, invisible to the ei_sim schedule explorer. *)

let rec spin_cas (a : int Atomic.t) v =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur v) then spin_cas a v
(* finding: self-recursive retry, sync-touching, no yield *)

let busy_wait (flag : bool Atomic.t) =
  while not (Atomic.get flag) do () done
(* finding: sync-polling while loop, no yield *)

let counting_loop () =
  let i = ref 0 in
  while !i < 10 do incr i done
(* clean: no synchronization involved *)
