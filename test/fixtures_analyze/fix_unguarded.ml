(* Planted rule-1 violations: shared mutable state with no concurrency
   annotation.  The annotated declarations must NOT fire. *)

type cache = {
  lock : Mutex.t;
  mutable hits : int;  (* finding: unguarded mutable field *)
  slots : int array;  (* finding: unguarded array field *)
  mutable misses : int [@ei.guarded_by "lock"];  (* clean *)
}

let total = ref 0 (* finding: module-level ref *)

let table : (string, int) Hashtbl.t = Hashtbl.create 8
(* finding: module-level table (and through a type constraint) *)

let[@ei.single_domain] scratch = Array.make 4 0 (* clean *)
let generation = Atomic.make 0 (* clean: atomics need no guard *)
