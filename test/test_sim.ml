(* ei_sim: the simulation harness's own suite.

   - differential runs: oracle vs every tree-shaped subject over
     >= 100k-op tapes (fixed seeds, overridable with EI_SEED);
   - a known-divergence self-test: a scratch btree branch with a
     planted off-by-one must be caught, shrunk to a tiny repro tape,
     and round-tripped through a .sim.json artifact;
   - the fiber scheduler: determinism, a planted lost-update race the
     explorer and the exhaustive enumerator must both find (and the
     shrinker must minimise), and the OLC race/conversion scenarios
     that must survive exploration;
   - the serve perturbation engine at smoke scale. *)

module Rng = Ei_util.Rng
module Key = Ei_util.Key
module Index_ops = Ei_harness.Index_ops
module Tape = Ei_sim.Tape
module Sim = Ei_sim.Sim
module Sched = Ei_sim.Sched
module Mini_json = Ei_sim.Mini_json

let seed = Rng.env_seed ~default:42

let subj ?(bound = 1 lsl 20) name =
  match Sim.subject_of_name ~bound ~key_len:8 name with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let traces_equal a b =
  Array.length a = Array.length b && Array.for_all2 String.equal a b

(* --- Determinism ------------------------------------------------------ *)

let test_run_deterministic () =
  let tape = Tape.generate ~seed (Tape.faulty_gen ~ops:20_000 ()) in
  List.iter
    (fun name ->
      let t1 = Sim.run_tape (subj name) tape in
      let t2 = Sim.run_tape (subj name) tape in
      Alcotest.(check bool)
        (name ^ " traces byte-identical across invocations")
        true (traces_equal t1 t2))
    [ "btree"; "olc-elastic" ]

let test_tape_json_roundtrip () =
  let tape = Tape.generate ~seed (Tape.elastic_gen ~ops:500 ~base_bound:4096 ()) in
  let json = Mini_json.to_string (Tape.to_json tape) in
  match Result.bind (Mini_json.parse json) Tape.of_json with
  | Error e -> Alcotest.fail e
  | Ok tape' ->
    Alcotest.(check int) "seed" tape.Tape.seed tape'.Tape.seed;
    Alcotest.(check int) "pool" tape.Tape.pool tape'.Tape.pool;
    Alcotest.(check bool) "ops" true
      (Array.for_all2
         (fun a b -> String.equal (Tape.op_to_string a) (Tape.op_to_string b))
         tape.Tape.ops tape'.Tape.ops);
    Alcotest.(check bool) "identical traces" true
      (traces_equal
         (Sim.run_tape (subj "seqtree") tape)
         (Sim.run_tape (subj "seqtree") tape'))

(* --- Differential runs ------------------------------------------------ *)

let agree ?slack ?check_mem ?(gen = fun ~ops () -> Tape.default_gen ~ops ())
    ?bound ~ops name () =
  let tape = Tape.generate ~seed (gen ~ops ()) in
  match
    Sim.diff_pair ?slack ?check_mem (subj "oracle") (subj ?bound name) tape
  with
  | None -> ()
  | Some d -> Alcotest.fail (Sim.pp_divergence ~a:"oracle" ~b:name d)

let test_oracle_vs_btree = agree ~ops:100_000 "btree"
let test_oracle_vs_skiplist = agree ~ops:100_000 "skiplist"
let test_oracle_vs_seqtree = agree ~ops:100_000 "seqtree"
let test_oracle_vs_olc = agree ~ops:100_000 "olc"

let test_oracle_vs_btree_faulty () =
  agree ~gen:(fun ~ops () -> Tape.faulty_gen ~ops ()) ~ops:60_000 "btree" ();
  (* Guard against vacuous plumbing: the windows must actually inject. *)
  let tape = Tape.generate ~seed (Tape.faulty_gen ~ops:60_000 ()) in
  let tr = Sim.run_tape (subj "btree") tape in
  let injected =
    Array.fold_left
      (fun acc e ->
        if String.length e > 0 && Char.equal e.[String.length e - 1] '!' then
          acc + 1
        else acc)
      0 tr
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d ops injected away" injected)
    true (injected > 0)

(* Elastic subjects: bound changes drive the state machine; checkpoints
   additionally record bound compliance (memory <= slack * bound). *)
let elastic_agree name =
  let base_bound = 48 * 1024 in
  agree ~slack:4.0 ~check_mem:true
    ~gen:(fun ~ops () -> Tape.elastic_gen ~ops ~base_bound ())
    ~ops:60_000 ~bound:base_bound name

let test_oracle_vs_elastic = elastic_agree "elastic"
let test_oracle_vs_elastic_skiplist = elastic_agree "elastic-skiplist"
let test_oracle_vs_olc_elastic = elastic_agree "olc-elastic"

(* --- Known divergence: planted off-by-one ----------------------------- *)

(* A scratch btree branch whose scans have a classic boundary
   off-by-one: entries *equal to* the start key are skipped (">"
   instead of ">=").  The harness must catch it and shrink the repro
   to a tiny tape (an insert and a scan hitting that key). *)
let buggy_btree () =
  let real = subj "btree" in
  Sim.subject ~name:"buggy-btree" ~elastic:false (fun table ->
      let ix = real.Sim.s_make table in
      let skip_eq start visit k =
        if not (String.equal k start) then visit k
      in
      {
        ix with
        Index_ops.scan =
          (fun start n ->
            let c = ref 0 in
            ignore
              (ix.Index_ops.scan_keys start n
                 (skip_eq start (fun _ -> incr c)));
            !c);
        scan_keys =
          (fun start n visit ->
            let c = ref 0 in
            ignore
              (ix.Index_ops.scan_keys start n
                 (skip_eq start
                    (fun k ->
                      incr c;
                      visit k)));
            !c);
      })

let test_divergence_caught_and_shrunk () =
  let oracle = subj "oracle" in
  let buggy = buggy_btree () in
  let tape = Tape.generate ~seed (Tape.default_gen ~ops:5_000 ()) in
  (match Sim.diff_pair oracle buggy tape with
  | None -> Alcotest.fail "planted off-by-one not caught"
  | Some _ -> ());
  let shrunk = Sim.shrink_tape oracle buggy tape in
  let len = Array.length shrunk.Tape.ops in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to %d ops (<= 20)" len)
    true (len <= 20);
  (match Sim.diff_pair oracle buggy shrunk with
  | None -> Alcotest.fail "shrunk tape no longer diverges"
  | Some _ -> ());
  (* The artifact must round-trip and still reproduce a divergence —
     against the *real* btree it reproduces nothing (the bug is in the
     scratch branch), so replay it against the oracle/btree pair and
     expect agreement, then against the planted subject by hand. *)
  let path = Filename.temp_file "ei_sim" ".sim.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sim.write_artifact ~path
        (Sim.A_diff
           {
             tape = shrunk;
             a = "oracle";
             b = "btree";
             bound = 1 lsl 20;
             slack = 3.0;
             check_mem = false;
             divergence = "planted off-by-one (scratch branch)";
           });
      match Sim.replay_file ~path with
      | Ok (false, _) -> ()  (* the real btree is correct on this tape *)
      | Ok (true, msg) -> Alcotest.fail ("real btree diverged: " ^ msg)
      | Error e -> Alcotest.fail e);
  (* And the loaded tape still kills the planted branch. *)
  let reloaded =
    match
      Result.bind
        (Mini_json.parse (Mini_json.to_string (Tape.to_json shrunk)))
        Tape.of_json
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  match Sim.diff_pair oracle buggy reloaded with
  | None -> Alcotest.fail "reloaded tape no longer diverges"
  | Some _ -> ()

(* --- Fiber scheduler -------------------------------------------------- *)

let mk name () =
  match Sim.scenario name with
  | Some mk -> mk
  | None -> Alcotest.fail ("missing scenario " ^ name)

let test_sched_deterministic () =
  let run () =
    Sched.run ~policy:(Sched.Random (Rng.stream seed 7)) (mk "olc-race" () ())
  in
  match (run (), run ()) with
  | Ok s1, Ok s2 ->
    Alcotest.(check (list int)) "same realized schedule" s1 s2
  | Error (_, e), _ | _, Error (_, e) -> Alcotest.fail e

let test_lost_update_found_and_shrunk () =
  let mk = mk "lost-update" () in
  match Sched.explore ~seed ~rounds:64 mk with
  | None -> Alcotest.fail "explorer missed the planted lost-update race"
  | Some f ->
    let shrunk = Sched.shrink ~schedule:f.Sched.schedule mk in
    Alcotest.(check bool)
      (Printf.sprintf "schedule shrunk to %d choices" (List.length shrunk))
      true
      (List.length shrunk <= List.length f.Sched.schedule);
    (match Sched.replay ~schedule:shrunk mk with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "shrunk schedule no longer fails");
    (* Artifact round-trip through .sim.json. *)
    let path = Filename.temp_file "ei_sim" ".sim.json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Sim.write_artifact ~path
          (Sim.A_sched
             {
               scenario = "lost-update";
               seed;
               schedule = shrunk;
               error = f.Sched.error;
             });
        match Sim.replay_file ~path with
        | Ok (true, _) -> ()
        | Ok (false, msg) -> Alcotest.fail ("not reproduced: " ^ msg)
        | Error e -> Alcotest.fail e)

let test_lost_update_enumerated () =
  (* Enumeration stops at the first failing prefix, so coverage is
     asserted on a benign scenario below. *)
  let failure, _ = Sched.enumerate ~fanout:2 ~depth:4 (mk "lost-update" ()) in
  match failure with
  | Some _ -> ()
  | None -> Alcotest.fail "exhaustive enumeration missed the race"

let test_enumerate_coverage () =
  (* Race-free two-fiber scenario: every interleaving passes, and the
     prefix sweep must realize several distinct schedules. *)
  let benign () =
    let a = ref 0 and b = ref 0 in
    let fib r () =
      r := !r + 1;
      Sched.pause ();
      r := !r + 1
    in
    {
      Sched.fibers = [| ("a", fib a); ("b", fib b) |];
      check =
        (fun () ->
          if !a <> 2 || !b <> 2 then
            Ei_util.Invariant.brokenf "benign: a=%d b=%d" !a !b);
    }
  in
  let failure, distinct = Sched.enumerate ~fanout:2 ~depth:3 benign in
  (match failure with
  | None -> ()
  | Some f -> Alcotest.fail ("benign scenario failed: " ^ f.Sched.error));
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct schedules realized" distinct)
    true (distinct >= 3)

let test_olc_scenarios_survive_exploration () =
  List.iter
    (fun name ->
      match Sched.explore ~seed ~rounds:20 (mk name ()) with
      | None -> ()
      | Some f ->
        Alcotest.fail
          (Printf.sprintf "%s failed at round %d: %s" name f.Sched.round
             f.Sched.error))
    [ "olc-race"; "olc-convert-scan"; "olc-multi-find" ]

let test_olc_convert_scan_enumerated () =
  let failure, distinct =
    Sched.enumerate ~fanout:2 ~depth:8 (mk "olc-convert-scan" ())
  in
  Alcotest.(check bool) "coverage" true (distinct >= 4);
  match failure with
  | None -> ()
  | Some f -> Alcotest.fail ("olc-convert-scan: " ^ f.Sched.error)

let test_olc_multi_find_enumerated () =
  let failure, distinct =
    Sched.enumerate ~fanout:2 ~depth:8 (mk "olc-multi-find" ())
  in
  Alcotest.(check bool) "coverage" true (distinct >= 4);
  match failure with
  | None -> ()
  | Some f -> Alcotest.fail ("olc-multi-find: " ^ f.Sched.error)

(* --- Serve perturbation ----------------------------------------------- *)

let test_serve_perturbed_smoke () =
  match Sim.explore_serve ~shards:2 ~scale:0.02 ~seed ~rounds:1 () with
  | None -> ()
  | Some (round_seed, report) ->
    Alcotest.fail
      (Printf.sprintf "perturbed chaos failed (seed %d):\n%s" round_seed
         report)

let () =
  Alcotest.run "sim"
    [
      ( "determinism",
        [
          Alcotest.test_case "seeded run is byte-identical" `Quick
            test_run_deterministic;
          Alcotest.test_case "tape round-trips through JSON" `Quick
            test_tape_json_roundtrip;
        ] );
      ( "differential",
        [
          Alcotest.test_case "oracle vs btree (100k ops)" `Quick
            test_oracle_vs_btree;
          Alcotest.test_case "oracle vs skiplist (100k ops)" `Quick
            test_oracle_vs_skiplist;
          Alcotest.test_case "oracle vs seqtree (100k ops)" `Quick
            test_oracle_vs_seqtree;
          Alcotest.test_case "oracle vs olc (100k ops)" `Quick
            test_oracle_vs_olc;
          Alcotest.test_case "oracle vs btree under fault windows" `Quick
            test_oracle_vs_btree_faulty;
          Alcotest.test_case "oracle vs elastic (bounds + memok)" `Quick
            test_oracle_vs_elastic;
          Alcotest.test_case "oracle vs elastic-skiplist" `Quick
            test_oracle_vs_elastic_skiplist;
          Alcotest.test_case "oracle vs olc-elastic" `Quick
            test_oracle_vs_olc_elastic;
          Alcotest.test_case "planted off-by-one caught, shrunk, replayed"
            `Quick test_divergence_caught_and_shrunk;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "equal seeds realize equal schedules" `Quick
            test_sched_deterministic;
          Alcotest.test_case "lost-update race found and shrunk" `Quick
            test_lost_update_found_and_shrunk;
          Alcotest.test_case "lost-update race enumerated exhaustively" `Quick
            test_lost_update_enumerated;
          Alcotest.test_case "enumeration coverage on a benign scenario" `Quick
            test_enumerate_coverage;
          Alcotest.test_case "olc scenarios survive random exploration" `Slow
            test_olc_scenarios_survive_exploration;
          Alcotest.test_case "olc-convert-scan survives enumeration" `Slow
            test_olc_convert_scan_enumerated;
          Alcotest.test_case "olc-multi-find survives enumeration" `Slow
            test_olc_multi_find_enumerated;
        ] );
      ( "serve",
        [
          Alcotest.test_case "perturbed chaos smoke" `Slow
            test_serve_perturbed_smoke;
        ] );
    ]
