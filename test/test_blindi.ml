(* Property and unit tests for the blind-trie node representations:
   SeqTree (all tree levels, with and without breathing) and SubTrie.
   Every representation is compared against a sorted-array reference
   model on random operation sequences, and structural invariants are
   checked after each mutation. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Table = Ei_storage.Table
module Seqtree = Ei_blindi.Seqtree
module Subtrie = Ei_blindi.Subtrie
module Stringtrie = Ei_blindi.Stringtrie

(* ------------------------------------------------------------------ *)
(* Reference model: sorted array of (key, tid).                        *)

module Ref_model = struct
  type t = { mutable entries : (string * int) list }

  let create () = { entries = [] }

  let insert t key tid =
    if List.mem_assoc key t.entries then `Duplicate
    else begin
      t.entries <-
        List.sort (fun (a, _) (b, _) -> Key.compare a b) ((key, tid) :: t.entries);
      `Ok
    end

  let remove t key =
    if List.mem_assoc key t.entries then begin
      t.entries <- List.remove_assoc key t.entries;
      `Ok
    end
    else `Absent

  let count t = List.length t.entries

  (* Position of [key] if present, else predecessor position (-1 if none):
     the same semantics as Seqtree.locate. *)
  let locate t key =
    let arr = Array.of_list t.entries in
    let n = Array.length arr in
    let rec scan i =
      if i >= n then `Pred (n - 1)
      else
        let c = Key.compare key (fst arr.(i)) in
        if c = 0 then `Found i else if c < 0 then `Pred (i - 1) else scan (i + 1)
    in
    scan 0

  let tid_at t i = snd (List.nth t.entries i)
  let _keys t = List.map fst t.entries
  let tids t = List.map snd t.entries
end

(* ------------------------------------------------------------------ *)
(* Random keys backed by a table.                                      *)

let fresh_key rng table seen key_len =
  let rec draw () =
    let k = Key.random rng key_len in
    if Hashtbl.mem seen k then draw () else k
  in
  let k = draw () in
  Hashtbl.add seen k ();
  let tid = Table.append table k in
  (k, tid)

(* ------------------------------------------------------------------ *)
(* Generic driver over a node implementation.                          *)

module type NODE = sig
  type t

  val count : t -> int
  val tid_at : t -> int -> int
  val locate : t -> load:(int -> string) -> string -> [ `Found of int | `Pred of int ]
  val insert : t -> load:(int -> string) -> string -> int -> [ `Ok | `Full | `Dup ]
  val remove : t -> load:(int -> string) -> string -> [ `Ok | `Absent ]
  val check : t -> load:(int -> string) -> unit
end

module Seqtree_node : NODE with type t = Seqtree.t = struct
  type t = Seqtree.t

  let count = Seqtree.count
  let tid_at = Seqtree.tid_at

  let locate t ~load key =
    match Seqtree.locate t ~load key with
    | Seqtree.Found i -> `Found i
    | Seqtree.Pred p -> `Pred p

  let insert t ~load key tid =
    match Seqtree.insert t ~load key tid with
    | Seqtree.Inserted -> `Ok
    | Seqtree.Full -> `Full
    | Seqtree.Duplicate -> `Dup

  let remove t ~load key =
    match Seqtree.remove t ~load key with
    | Seqtree.Removed -> `Ok
    | Seqtree.Not_present -> `Absent

  let check t ~load = Seqtree.check_invariants t ~load
end

module Stringtrie_node : NODE with type t = Stringtrie.t = struct
  type t = Stringtrie.t

  let count = Stringtrie.count
  let tid_at = Stringtrie.tid_at

  let locate t ~load key =
    match Stringtrie.locate t ~load key with
    | Stringtrie.Found i -> `Found i
    | Stringtrie.Pred p -> `Pred p

  let insert t ~load key tid =
    match Stringtrie.insert t ~load key tid with
    | Stringtrie.Inserted -> `Ok
    | Stringtrie.Full -> `Full
    | Stringtrie.Duplicate -> `Dup

  let remove t ~load key =
    match Stringtrie.remove t ~load key with
    | Stringtrie.Removed -> `Ok
    | Stringtrie.Not_present -> `Absent

  let check t ~load = Stringtrie.check_invariants t ~load
end

module Subtrie_node : NODE with type t = Subtrie.t = struct
  type t = Subtrie.t

  let count = Subtrie.count
  let tid_at = Subtrie.tid_at

  let locate t ~load key =
    match Subtrie.locate t ~load key with
    | Subtrie.Found i -> `Found i
    | Subtrie.Pred p -> `Pred p

  let insert t ~load key tid =
    match Subtrie.insert t ~load key tid with
    | Subtrie.Inserted -> `Ok
    | Subtrie.Full -> `Full
    | Subtrie.Duplicate -> `Dup

  let remove t ~load key =
    match Subtrie.remove t ~load key with
    | Subtrie.Removed -> `Ok
    | Subtrie.Not_present -> `Absent

  let check t ~load = Subtrie.check_invariants t ~load
end

(* Run a random operation sequence against a node and the reference model,
   verifying results and invariants after every step. *)
let run_trial (type a) (module N : NODE with type t = a) (node : a) ~capacity
    ~key_len ~seed ~nops =
  let rng = Rng.create seed in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let seen = Hashtbl.create 64 in
  let model = Ref_model.create () in
  let live = ref [] in
  for _step = 1 to nops do
    let choice = Rng.int rng 100 in
    if choice < 50 && Ref_model.count model < capacity then begin
      (* Insert a fresh key. *)
      let k, tid = fresh_key rng table seen key_len in
      (match (N.insert node ~load k tid, Ref_model.insert model k tid) with
      | `Ok, `Ok -> live := k :: !live
      | r, m ->
        Alcotest.failf "insert mismatch: node=%s model=%s"
          (match r with `Ok -> "ok" | `Full -> "full" | `Dup -> "dup")
          (match m with `Ok -> "ok" | `Duplicate -> "dup"))
    end
    else if choice < 65 && !live <> [] then begin
      (* Remove a random live key. *)
      let k = List.nth !live (Rng.int rng (List.length !live)) in
      (match (N.remove node ~load k, Ref_model.remove model k) with
      | `Ok, `Ok -> live := List.filter (fun k' -> not (Key.equal k k')) !live
      | _ -> Alcotest.fail "remove mismatch")
    end
    else if choice < 75 then begin
      (* Duplicate insert / absent remove must be rejected. *)
      match !live with
      | k :: _ ->
        (match N.insert node ~load k (-1) with
        | `Dup -> ()
        | _ -> Alcotest.fail "duplicate insert accepted");
        let absent = Key.random rng key_len in
        if not (Hashtbl.mem seen absent) then (
          match N.remove node ~load absent with
          | `Absent -> ()
          | `Ok -> Alcotest.fail "removed absent key")
      | [] -> ()
    end
    else begin
      (* Locate: a present key or a random probe. *)
      let probe =
        if Rng.bool rng && !live <> [] then
          List.nth !live (Rng.int rng (List.length !live))
        else Key.random rng key_len
      in
      match (N.locate node ~load probe, Ref_model.locate model probe) with
      | `Found i, `Found j ->
        if i <> j then Alcotest.failf "found at %d, expected %d" i j;
        if N.tid_at node i <> Ref_model.tid_at model j then
          Alcotest.fail "tid mismatch"
      | `Pred i, `Pred j ->
        if i <> j then Alcotest.failf "pred %d, expected %d" i j
      | `Found _, `Pred _ -> Alcotest.fail "node found a key the model lacks"
      | `Pred _, `Found _ -> Alcotest.fail "node missed a present key"
    end;
    N.check node ~load;
    if N.count node <> Ref_model.count model then
      Alcotest.failf "count mismatch: node=%d model=%d" (N.count node)
        (Ref_model.count model)
  done;
  (* Final sweep: tids in key order must match the model exactly. *)
  let tids = List.init (N.count node) (fun i -> N.tid_at node i) in
  if tids <> Ref_model.tids model then Alcotest.fail "final tid order mismatch"

(* ------------------------------------------------------------------ *)
(* Trial instantiations.                                               *)

let seqtree_case ~key_len ~capacity ~levels ~breathing ~seed () =
  let node = Seqtree.create ~key_len ~capacity ~levels ~breathing () in
  run_trial (module Seqtree_node) node ~capacity ~key_len ~seed
    ~nops:(6 * capacity)

let subtrie_case ~key_len ~capacity ~seed () =
  let node = Subtrie.create ~key_len ~capacity () in
  run_trial (module Subtrie_node) node ~capacity ~key_len ~seed
    ~nops:(6 * capacity)

let stringtrie_case ~key_len ~capacity ~seed () =
  let node = Stringtrie.create ~key_len ~capacity () in
  run_trial (module Stringtrie_node) node ~capacity ~key_len ~seed
    ~nops:(6 * capacity)

let seqtree_grid =
  List.concat_map
    (fun key_len ->
      List.concat_map
        (fun (capacity, levels_list) ->
          List.concat_map
            (fun levels ->
              List.map
                (fun breathing ->
                  let name =
                    Printf.sprintf "seqtree k=%dB cap=%d lvl=%d s=%d" key_len
                      capacity levels breathing
                  in
                  Alcotest.test_case name `Quick
                    (seqtree_case ~key_len ~capacity ~levels ~breathing
                       ~seed:(key_len + capacity + levels + breathing)))
                [ 0; 1; 4 ])
            levels_list)
        [ (2, [ 0 ]); (16, [ 0; 2; 3 ]); (64, [ 0; 2; 5 ]); (128, [ 2; 6 ]) ])
    [ 8; 16; 30 ]

let subtrie_grid =
  List.concat_map
    (fun key_len ->
      List.map
        (fun capacity ->
          let name = Printf.sprintf "subtrie k=%dB cap=%d" key_len capacity in
          Alcotest.test_case name `Quick
            (subtrie_case ~key_len ~capacity ~seed:(17 * key_len + capacity)))
        [ 2; 16; 64; 128 ])
    [ 8; 16; 30 ]

let stringtrie_grid =
  List.concat_map
    (fun key_len ->
      List.map
        (fun capacity ->
          let name = Printf.sprintf "stringtrie k=%dB cap=%d" key_len capacity in
          Alcotest.test_case name `Quick
            (stringtrie_case ~key_len ~capacity ~seed:(23 * key_len + capacity)))
        [ 2; 16; 64; 128 ])
    [ 8; 16; 30 ]

(* ------------------------------------------------------------------ *)
(* Bulk construction / split / merge.                                  *)

let sorted_fixture rng table ~key_len ~n =
  let seen = Hashtbl.create 64 in
  let pairs = Array.init n (fun _ -> fresh_key rng table seen key_len) in
  Array.sort (fun (a, _) (b, _) -> Key.compare a b) pairs;
  (Array.map fst pairs, Array.map snd pairs)

let test_of_sorted () =
  let rng = Rng.stream seed 99 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys, tids = sorted_fixture rng table ~key_len:8 ~n:50 in
  let t =
    Seqtree.of_sorted ~key_len:8 ~capacity:64 ~levels:3 ~breathing:4 keys tids 50
  in
  Seqtree.check_invariants t ~load;
  Array.iteri
    (fun i k ->
      match Seqtree.find t ~load k with
      | Some tid -> Alcotest.(check int) "tid" tids.(i) tid
      | None -> Alcotest.fail "key lost by of_sorted")
    keys

let test_split_merge () =
  let rng = Rng.stream seed 7 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys, tids = sorted_fixture rng table ~key_len:8 ~n:40 in
  let t =
    Seqtree.of_sorted ~key_len:8 ~capacity:64 ~levels:2 ~breathing:0 keys tids 40
  in
  let left, right = Seqtree.split t ~left_capacity:32 ~right_capacity:32 in
  Seqtree.check_invariants left ~load;
  Seqtree.check_invariants right ~load;
  Alcotest.(check int) "left count" 20 (Seqtree.count left);
  Alcotest.(check int) "right count" 20 (Seqtree.count right);
  (* Every key findable in exactly the expected half. *)
  Array.iteri
    (fun i k ->
      let half = if i < 20 then left else right in
      match Seqtree.find half ~load k with
      | Some tid -> Alcotest.(check int) "tid" tids.(i) tid
      | None -> Alcotest.fail "key lost by split")
    keys;
  let merged = Seqtree.merge left right ~load ~capacity:64 ~levels:2 in
  Seqtree.check_invariants merged ~load;
  Alcotest.(check int) "merged count" 40 (Seqtree.count merged);
  Array.iteri
    (fun i k ->
      match Seqtree.find merged ~load k with
      | Some tid -> Alcotest.(check int) "tid" tids.(i) tid
      | None -> Alcotest.fail "key lost by merge")
    keys

let test_subtrie_split_merge () =
  let rng = Rng.stream seed 8 in
  let table = Table.create ~key_len:16 () in
  let load = Table.loader table in
  let keys, tids = sorted_fixture rng table ~key_len:16 ~n:30 in
  let t = Subtrie.of_sorted ~key_len:16 ~capacity:32 keys tids 30 in
  let left, right = Subtrie.split t ~left_capacity:32 ~right_capacity:32 in
  Subtrie.check_invariants left ~load;
  Subtrie.check_invariants right ~load;
  let merged = Subtrie.merge left right ~load ~capacity:32 in
  Subtrie.check_invariants merged ~load;
  Array.iteri
    (fun i k ->
      match Subtrie.find merged ~load k with
      | Some tid -> Alcotest.(check int) "tid" tids.(i) tid
      | None -> Alcotest.fail "key lost")
    keys

let test_with_capacity () =
  let rng = Rng.stream seed 21 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys, tids = sorted_fixture rng table ~key_len:8 ~n:30 in
  let t =
    Seqtree.of_sorted ~key_len:8 ~capacity:32 ~levels:2 ~breathing:2 keys tids 30
  in
  let grown = Seqtree.with_capacity t ~capacity:64 ~levels:2 in
  Seqtree.check_invariants grown ~load;
  Alcotest.(check int) "capacity" 64 (Seqtree.capacity grown);
  Array.iter
    (fun k ->
      if Seqtree.find grown ~load k = None then Alcotest.fail "key lost by grow")
    keys

(* ------------------------------------------------------------------ *)
(* Scans.                                                              *)

let test_lower_bound_scan () =
  let rng = Rng.stream seed 31 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys, tids = sorted_fixture rng table ~key_len:8 ~n:60 in
  let t =
    Seqtree.of_sorted ~key_len:8 ~capacity:64 ~levels:3 ~breathing:0 keys tids 60
  in
  for trial = 0 to 199 do
    ignore trial;
    let probe = Key.random rng 8 in
    let pos = Seqtree.lower_bound t ~load probe in
    (* Reference lower bound. *)
    let expected =
      let rec go i =
        if i >= 60 then 60
        else if Key.compare keys.(i) probe >= 0 then i
        else go (i + 1)
      in
      go 0
    in
    Alcotest.(check int) "lower bound" expected pos;
    (* A 5-element scan from the position yields consecutive tids. *)
    let collected =
      List.rev (Seqtree.fold_from t pos (fun acc tid -> tid :: acc) [])
    in
    let got = List.filteri (fun i _ -> i < 5) collected in
    let expect_scan = Array.to_list (Array.sub tids expected (min 5 (60 - expected))) in
    Alcotest.(check (list int)) "scan order" expect_scan got
  done

(* --- Breathing memory model --------------------------------------- *)

let test_breathing_memory () =
  let mk breathing =
    Seqtree.create ~key_len:8 ~capacity:128 ~levels:2 ~breathing ()
  in
  let nobr = mk 0 and br = mk 4 in
  (* Empty breathing node must be much smaller than a full-capacity tid
     array node. *)
  Alcotest.(check bool) "breathing saves space when sparse" true
    (Seqtree.memory_bytes br < Seqtree.memory_bytes nobr);
  (* Elasticity requirement (§4): a compact leaf with capacity 2n is
     smaller than a standard leaf with capacity n.  For >= 16-byte keys
     this holds outright; for 8-byte keys (where tuple ids dominate) it
     relies on breathing at conversion-time occupancy, which is how the
     paper configures the elastic B+-tree (s = 4). *)
  let std16 = Ei_storage.Memmodel.std_leaf_bytes ~capacity:16 ~key_len:16 in
  let compact16 =
    Seqtree.create ~key_len:16 ~capacity:32 ~levels:2 ~breathing:0 ()
  in
  Alcotest.(check bool) "compact(2n) < std(n), 16B keys" true
    (Seqtree.memory_bytes compact16 < std16);
  let std8 = Ei_storage.Memmodel.std_leaf_bytes ~capacity:16 ~key_len:8 in
  (* A just-converted compact leaf holds n+1 = 17 keys with slack 4. *)
  let converted =
    Ei_storage.Memmodel.seqtree_bytes ~capacity:32 ~key_len:8 ~levels:2
      ~tid_slots:21 ~breathing:true
  in
  Alcotest.(check bool) "converted compact leaf < std leaf, 8B keys" true
    (converted < std8)

let () =
  Alcotest.run "ei_blindi"
    [
      ("seqtree-grid", seqtree_grid);
      ("subtrie-grid", subtrie_grid);
      ("stringtrie-grid", stringtrie_grid);
      ( "bulk",
        [
          Alcotest.test_case "of_sorted" `Quick test_of_sorted;
          Alcotest.test_case "split/merge" `Quick test_split_merge;
          Alcotest.test_case "subtrie split/merge" `Quick test_subtrie_split_merge;
          Alcotest.test_case "with_capacity" `Quick test_with_capacity;
        ] );
      ( "scan",
        [ Alcotest.test_case "lower_bound + fold" `Quick test_lower_bound_scan ] );
      ( "memory",
        [ Alcotest.test_case "breathing model" `Quick test_breathing_memory ] );
    ]
