(* Tests for the baseline indexes: the adaptive blind radix trie (HOT
   substitute with indirect keys / ART mode with stored keys) and the
   skip list.  All are driven against a Map reference model, including
   range scans from random (usually absent) start keys — the hard case
   for blind tries. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng

(* All trial seeds derive from EI_SEED (default 0): stream N here was
   formerly the fixed seed N, so default behaviour is unchanged in
   spirit while EI_SEED re-rolls the whole executable. *)
let seed = Rng.env_seed ~default:0
module Table = Ei_storage.Table
module Radix = Ei_baselines.Radix
module Skiplist = Ei_baselines.Skiplist
module Hybrid = Ei_baselines.Hybrid

module Smap = Map.Make (String)

module type INDEX = sig
  type t

  val insert : t -> string -> int -> bool
  val remove : t -> string -> bool
  val find : t -> string -> int option
  val count : t -> int
  val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
  val iter : t -> (string -> int -> unit) -> unit
  val check_invariants : t -> unit
end

let random_ops (type a) (module I : INDEX with type t = a) (index : a)
    (table : Table.t) ~key_len ~nops ~key_space ~seed () =
  let rng = Rng.create seed in
  let model = ref Smap.empty in
  let pool = Array.init key_space (fun _ -> Key.random rng key_len) in
  let tid_of = Hashtbl.create 256 in
  for step = 1 to nops do
    let k = pool.(Rng.int rng key_space) in
    let choice = Rng.int rng 100 in
    if choice < 50 then begin
      let tid =
        match Hashtbl.find_opt tid_of k with
        | Some tid -> tid
        | None ->
          let tid = Table.append table k in
          Hashtbl.add tid_of k tid;
          tid
      in
      if I.insert index k tid <> not (Smap.mem k !model) then
        Alcotest.fail "insert mismatch";
      if not (Smap.mem k !model) then model := Smap.add k tid !model
    end
    else if choice < 75 then begin
      if I.remove index k <> Smap.mem k !model then Alcotest.fail "remove mismatch";
      model := Smap.remove k !model
    end
    else if choice < 90 then begin
      match (I.find index k, Smap.find_opt k !model) with
      | Some a, Some b -> if a <> b then Alcotest.fail "tid mismatch"
      | None, None -> ()
      | _ -> Alcotest.fail "membership mismatch"
    end
    else begin
      (* Range scan from a random start key. *)
      let start = Key.random rng key_len in
      let n = 1 + Rng.int rng 20 in
      let got =
        List.rev
          (I.fold_range index ~start ~n (fun acc k tid -> (k, tid) :: acc) [])
      in
      let expected =
        Smap.to_seq !model
        |> Seq.filter (fun (k, _) -> Key.compare k start >= 0)
        |> Seq.take n |> List.of_seq
      in
      if got <> expected then
        Alcotest.failf "scan mismatch at step %d (got %d, want %d)" step
          (List.length got) (List.length expected)
    end;
    if I.count index <> Smap.cardinal !model then Alcotest.fail "count mismatch";
    if step mod 200 = 0 then I.check_invariants index
  done;
  I.check_invariants index;
  let got = ref [] in
  I.iter index (fun k tid -> got := (k, tid) :: !got);
  if List.rev !got <> Smap.bindings !model then Alcotest.fail "final contents"

module Radix_index : INDEX with type t = Radix.t = struct
  include Radix

  let iter t f = Radix.iter t f
end

module Skiplist_index : INDEX with type t = Skiplist.t = struct
  include Skiplist

  let iter t f = Skiplist.iter t f
end

module Hybrid_index : INDEX with type t = Hybrid.t = struct
  include Hybrid

  let iter t f = Hybrid.iter t f
end

let radix_case ~store_keys ~key_len ~seed () =
  let table = Table.create ~key_len () in
  let index = Radix.create ~store_keys ~key_len ~load:(Table.loader table) () in
  random_ops (module Radix_index) index table ~key_len ~nops:3000 ~key_space:800
    ~seed ()

let hybrid_case ~merge_ratio ~key_len ~seed () =
  let table = Table.create ~key_len () in
  let index = Hybrid.create ~merge_ratio ~key_len ~load:(Table.loader table) () in
  random_ops (module Hybrid_index) index table ~key_len ~nops:3000 ~key_space:800
    ~seed ()

let skiplist_case ~key_len ~seed () =
  let table = Table.create ~key_len () in
  let index = Skiplist.create ~key_len () in
  random_ops (module Skiplist_index) index table ~key_len ~nops:3000
    ~key_space:800 ~seed ()

(* --- Directed tests ------------------------------------------------- *)

let test_radix_dense () =
  (* Sequential integer keys exercise deep shared prefixes. *)
  let table = Table.create ~key_len:8 () in
  let t = Radix.create ~key_len:8 ~load:(Table.loader table) () in
  for i = 0 to 4999 do
    let k = Key.of_int i in
    if not (Radix.insert t k (Table.append table k)) then
      Alcotest.fail "dense insert"
  done;
  Radix.check_invariants t;
  for i = 0 to 4999 do
    if Radix.find t (Key.of_int i) = None then Alcotest.fail "dense find"
  done;
  (* Scan across a boundary. *)
  let got =
    Radix.fold_range t ~start:(Key.of_int 1234) ~n:5
      (fun acc k _ -> Key.to_int k :: acc)
      []
  in
  Alcotest.(check (list int)) "scan" [ 1238; 1237; 1236; 1235; 1234 ] got

let test_radix_memory_vs_stored () =
  (* Indirect key storage (HOT mode) must be substantially smaller than
     stored keys (ART mode) for long keys. *)
  let key_len = 30 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let hot = Radix.create ~store_keys:false ~key_len ~load () in
  let art = Radix.create ~store_keys:true ~key_len ~load () in
  let rng = Rng.stream seed 3 in
  for _ = 1 to 5000 do
    let k = Key.random rng key_len in
    let tid = Table.append table k in
    ignore (Radix.insert hot k tid);
    ignore (Radix.insert art k tid)
  done;
  Alcotest.(check bool) "indirect smaller" true
    (Radix.memory_bytes hot < Radix.memory_bytes art)

let test_radix_key_loads () =
  (* Scans in indirect mode must load every emitted key from the table —
     the cost HOT pays in the paper's scan experiments. *)
  let table = Table.create ~key_len:8 () in
  let t = Radix.create ~store_keys:false ~key_len:8 ~load:(Table.loader table) () in
  for i = 0 to 999 do
    let k = Key.of_int i in
    ignore (Radix.insert t k (Table.append table k))
  done;
  let before = Table.loads table in
  ignore (Radix.fold_range t ~start:(Key.of_int 100) ~n:50 (fun a _ _ -> a) ());
  let loads = Table.loads table - before in
  Alcotest.(check bool) "at least one load per scanned key" true (loads >= 50)

let test_hybrid_merge_behaviour () =
  (* Insert-only load: few merges, compact static stage (smaller than
     STX).  Updates against OLD entries violate the skew assumption and
     force repeated full rebuilds (the merge_work blow-up of §2). *)
  let key_len = 8 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let hybrid = Hybrid.create ~merge_ratio:0.1 ~key_len ~load () in
  let stx = Ei_btree.Btree.create ~key_len ~load ~policy:Ei_btree.Policy.stx () in
  let n = 20_000 in
  let keys = Array.init n (fun i -> Key.of_int i) in
  let tids = Array.map (Table.append table) keys in
  Array.iteri
    (fun i k ->
      ignore (Hybrid.insert hybrid k tids.(i));
      ignore (Ei_btree.Btree.insert stx k tids.(i)))
    keys;
  Hybrid.check_invariants hybrid;
  Alcotest.(check int) "count" n (Hybrid.count hybrid);
  (* The mostly-static hybrid is considerably smaller than STX. *)
  Alcotest.(check bool) "hybrid compact after load" true
    (Hybrid.memory_bytes hybrid * 3 < Ei_btree.Btree.memory_bytes stx * 2);
  let work_after_load = (Hybrid.stats hybrid).Hybrid.merge_work in
  (* Update old entries uniformly: every shadow lands in the dynamic
     stage and periodically forces an O(total) rebuild. *)
  let rng = Rng.stream seed 5 in
  for _ = 1 to n / 2 do
    let i = Rng.int rng n in
    ignore (Hybrid.update hybrid keys.(i) tids.(i))
  done;
  Hybrid.check_invariants hybrid;
  let work_after_updates = (Hybrid.stats hybrid).Hybrid.merge_work in
  (* n/2 updates caused rebuild work several times the data size. *)
  Alcotest.(check bool) "uniform updates trigger heavy merge work" true
    (work_after_updates - work_after_load > 2 * n)

let test_skiplist_memory () =
  (* The paper omits skip lists because they use more memory than STX. *)
  let key_len = 8 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let sl = Skiplist.create ~key_len () in
  let stx =
    Ei_btree.Btree.create ~key_len ~load ~policy:Ei_btree.Policy.stx ()
  in
  let rng = Rng.stream seed 11 in
  for _ = 1 to 10_000 do
    let k = Key.random rng key_len in
    let tid = Table.append table k in
    ignore (Skiplist.insert sl k tid);
    ignore (Ei_btree.Btree.insert stx k tid)
  done;
  Alcotest.(check bool) "skip list bigger than STX" true
    (Skiplist.memory_bytes sl > Ei_btree.Btree.memory_bytes stx)

let () =
  Alcotest.run "ei_baselines"
    [
      ( "radix",
        [
          Alcotest.test_case "hot-mode random ops 8B" `Quick
            (radix_case ~store_keys:false ~key_len:8 ~seed:1);
          Alcotest.test_case "hot-mode random ops 16B" `Quick
            (radix_case ~store_keys:false ~key_len:16 ~seed:2);
          Alcotest.test_case "hot-mode random ops 30B" `Quick
            (radix_case ~store_keys:false ~key_len:30 ~seed:3);
          Alcotest.test_case "art-mode random ops 8B" `Quick
            (radix_case ~store_keys:true ~key_len:8 ~seed:4);
          Alcotest.test_case "art-mode random ops 16B" `Quick
            (radix_case ~store_keys:true ~key_len:16 ~seed:5);
          Alcotest.test_case "dense keys" `Quick test_radix_dense;
          Alcotest.test_case "indirect vs stored memory" `Quick
            test_radix_memory_vs_stored;
          Alcotest.test_case "scan key loads" `Quick test_radix_key_loads;
        ] );
      ( "skiplist",
        [
          Alcotest.test_case "random ops 8B" `Quick (skiplist_case ~key_len:8 ~seed:6);
          Alcotest.test_case "random ops 16B" `Quick (skiplist_case ~key_len:16 ~seed:7);
          Alcotest.test_case "memory vs STX" `Quick test_skiplist_memory;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "random ops 8B" `Quick
            (hybrid_case ~merge_ratio:0.1 ~key_len:8 ~seed:8);
          Alcotest.test_case "random ops 16B, eager merges" `Quick
            (hybrid_case ~merge_ratio:0.02 ~key_len:16 ~seed:9);
          Alcotest.test_case "merge behaviour (skew assumption)" `Quick
            test_hybrid_merge_behaviour;
        ] );
    ]
