(* Shared adversarial property harness for the repo's CRC-framed
   codecs.  The WAL frame codec ([Ei_wal.Frame]) and the network wire
   codec ([Ei_net.Wire]) share one frame shape —

     u32 payload_len | u32 crc32(payload) | payload

   — so they share one battery of adversaries: every single-bit flip,
   every truncation, and a set of length-field lies.  A codec plugs in
   as an encoder plus a [verdict] view of its decoder; the contract
   under attack is the same for both ("a damaged frame is never
   accepted"), while what rejection looks like differs — the WAL
   decoder works on a complete file image, so everything is [Rejected];
   the incremental wire decoder may legitimately answer [Incomplete]
   (more bytes could still arrive) as long as it never accepts. *)

type verdict = Accepted | Rejected | Incomplete

let verdict_name = function
  | Accepted -> "accepted"
  | Rejected -> "rejected"
  | Incomplete -> "incomplete"

let flip_bit s i =
  let b = Bytes.of_string s in
  Bytes.set b (i / 8)
    (Char.chr (Char.code (Bytes.get b (i / 8)) lxor (1 lsl (i mod 8))));
  Bytes.to_string b

(* Rewrite the little-endian u32 length field at offset 0. *)
let patch_len s v =
  let b = Bytes.of_string s in
  Bytes.set_int32_le b 0 (Int32.of_int (v land 0xffffffff));
  Bytes.to_string b

(* Exhaustive single-bit-flip sweep: CRC-32 guarantees detection of any
   single-bit error within a frame, so every flip of every encoded
   vector must fail [allowed]'s complement — i.e. never be [Accepted]
   and never fall outside the codec's legal failure modes. *)
let check_bit_flips ~what ~describe ~encode ~verdict ~allowed values =
  List.iter
    (fun v ->
      let s = encode v in
      for i = 0 to (String.length s * 8) - 1 do
        let verd = verdict (flip_bit s i) in
        if not (allowed verd) then
          Alcotest.failf "%s: bit flip %d of %s was %s" what i (describe v)
            (verdict_name verd)
      done)
    values

(* Every proper prefix of a frame must be refused (or held as
   incomplete) — never decoded to a value. *)
let check_truncations ~what ~describe ~encode ~verdict ~allowed values =
  List.iter
    (fun v ->
      let s = encode v in
      for n = 0 to String.length s - 1 do
        let verd = verdict (String.sub s 0 n) in
        if not (allowed verd) then
          Alcotest.failf "%s: truncation to %d of %s was %s" what n
            (describe v) (verdict_name verd)
      done)
    values

(* Length-field lies: shorter than the payload (the CRC must catch the
   misframing), longer (must wait or reject, never read past the
   payload into garbage), and implausible extremes (must be rejected
   outright — the bounded-buffering defense). *)
let check_length_lies ~what ~describe ~encode ~verdict ~allowed values =
  List.iter
    (fun v ->
      let s = encode v in
      let real = String.length s - 8 in
      let lies =
        [ 0; 1; real - 1; real + 1; real + 9; 0x7fffffff; 0xffffffff ]
      in
      List.iter
        (fun lie ->
          if lie <> real && lie >= 0 then begin
            let verd = verdict (patch_len s lie) in
            if not (allowed verd) then
              Alcotest.failf "%s: length lie %d (real %d) of %s was %s" what
                lie real (describe v) (verdict_name verd)
          end)
        lies)
    values

(* Randomized single-bit flip as a qcheck property over the codec's own
   generator — the probabilistic arm backing the exhaustive fixed-vector
   sweeps above. *)
let prop_random_flip ~name ~arb ~encode ~verdict ~allowed =
  QCheck.Test.make ~name ~count:500
    QCheck.(pair arb (make QCheck.Gen.(int_bound 100_000)))
    (fun (v, i) ->
      let s = encode v in
      allowed (verdict (flip_bit s (i mod (String.length s * 8)))))
