(* Quickstart: build an elastic B+-tree over a small table, watch it
   shrink under memory pressure and expand back.

   Run with: dune exec examples/quickstart.exe *)

module Key = Ei_util.Key
module Table = Ei_storage.Table
module Elastic = Ei_core.Elastic_btree
module Elasticity = Ei_core.Elasticity

let () =
  (* The base table holds the rows; the index maps keys to row ids and,
     when compacted, loads keys back from the table. *)
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in

  (* An elastic B+-tree with a 768 KiB soft size bound: identical to a
     plain B+-tree until the bound approaches, then it converts leaves to
     the compact SeqTree representation. *)
  let config = Elasticity.default_config ~size_bound:(768 * 1024) in
  let index = Elastic.create ~key_len:8 ~load config () in

  (* Insert forty thousand keys in random order.  (The default
     elasticity policy piggybacks on leaf overflows, so inserts spread
     over the key space compact best; the paper notes policies for
     cold-leaf compaction as future work.) *)
  let n = 40_000 in
  let order = Array.init n (fun i -> i) in
  Ei_util.Rng.shuffle (Ei_util.Rng.create 1) order;
  Array.iter
    (fun i ->
      let key = Key.of_int (i * 7919) in
      let tid = Table.append table key in
      assert (Elastic.insert index key tid))
    order;
  Printf.printf "inserted %d keys; index uses %.1f KiB (%s state, %d compact leaves)\n"
    (Elastic.count index)
    (float_of_int (Elastic.memory_bytes index) /. 1024.0)
    (Elasticity.state_name (Elastic.state index))
    (Elastic.compact_leaves index);

  (* Point lookup. *)
  (match Elastic.find index (Key.of_int (12345 * 7919)) with
  | Some tid -> Printf.printf "found key 12345*7919 at row %d\n" tid
  | None -> failwith "lost a key!");

  (* Range scan: 5 keys from a start point.  Works across standard and
     compact leaves transparently. *)
  Printf.printf "5 keys from %d upwards:" (1000 * 7919);
  Elastic.fold_range index ~start:(Key.of_int (1000 * 7919)) ~n:5
    (fun () k _tid -> Printf.printf " %d" (Key.to_int k))
    ();
  print_newline ();

  (* Delete most of the data: the index expands back towards a plain
     B+-tree (searches decompact hot leaves). *)
  for i = 0 to n - 1 do
    if i mod 5 <> 0 then ignore (Elastic.remove index (Key.of_int (i * 7919)))
  done;
  let survivors = Elastic.count index in
  let probes = ref 0 in
  while Elastic.compact_leaves index > 0 && !probes < 1_000_000 do
    incr probes;
    ignore (Elastic.find index (Key.of_int ((!probes * 5 mod n) * 7919)))
  done;
  Printf.printf
    "after deleting 80%%: %d keys, %.1f KiB, %s state, %d compact leaves\n"
    survivors
    (float_of_int (Elastic.memory_bytes index) /. 1024.0)
    (Elasticity.state_name (Elastic.state index))
    (Elastic.compact_leaves index)
