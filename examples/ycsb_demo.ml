(* Run a YCSB workload against any index from the registry.

   Usage: dune exec examples/ycsb_demo.exe -- [index] [workload] [records] [ops]
     index:    stx | seqtree128 | subtrie128 | elastic | hot | art | skiplist
     workload: A | B | C | D | E | F

   Example: dune exec examples/ycsb_demo.exe -- elastic E 50000 100000 *)

module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Ycsb = Ei_workload.Ycsb
module Clock = Ei_util.Bench_clock

let kind_of_string records = function
  | "stx" -> Registry.Stx
  | "seqtree128" -> Registry.Seqtree 128
  | "subtrie128" -> Registry.Subtrie 128
  | "elastic" ->
    (* Shrink once the index exceeds ~60% of what STX would need. *)
    Registry.Elastic
      (Ei_core.Elasticity.default_config ~size_bound:(records * 56 * 6 / 10))
  | "hot" -> Registry.Hot
  | "art" -> Registry.Art
  | "skiplist" -> Registry.Skiplist
  | s -> failwith ("unknown index: " ^ s)

let workload_of_string = function
  | "A" | "a" -> Ycsb.A
  | "B" | "b" -> Ycsb.B
  | "C" | "c" -> Ycsb.C
  | "D" | "d" -> Ycsb.D
  | "E" | "e" -> Ycsb.E
  | "F" | "f" -> Ycsb.F
  | s -> failwith ("unknown workload: " ^ s)

let () =
  let arg i default = if Array.length Sys.argv > i then Sys.argv.(i) else default in
  let index_name = arg 1 "elastic" in
  let workload = workload_of_string (arg 2 "A") in
  let records = int_of_string (arg 3 "50000") in
  let ops = int_of_string (arg 4 "100000") in
  let table = Table.create ~key_len:8 () in
  let index =
    Registry.make ~key_len:8 ~load:(Table.loader table)
      (kind_of_string records index_name)
  in
  let runner = Ycsb.create ~index ~table ~record_count:records () in
  let (), load_dt = Clock.time (fun () -> Ycsb.load runner records) in
  Printf.printf "%s: loaded %d records in %.2fs (%.2f Mops), index %.2f MiB %s\n"
    index.Index_ops.name records load_dt
    (Clock.mops records load_dt)
    (Clock.mib (index.Index_ops.memory_bytes ()))
    (index.Index_ops.info ());
  let found = ref 0 in
  let (), txn_dt =
    Clock.time (fun () ->
        found := Ycsb.run runner ~workload ~dist:Ycsb.Zipfian ~ops)
  in
  Printf.printf
    "workload %s: %d ops in %.2fs (%.2f Mops, %d reads served), index %.2f MiB %s\n"
    (Ycsb.workload_name workload)
    ops txn_dt (Clock.mops ops txn_dt) !found
    (Clock.mib (index.Index_ops.memory_bytes ()))
    (index.Index_ops.info ())
