(* The paper's motivating scenario (§1, Fig 1): an in-memory DBMS element
   of a data pipeline holds a sliding window of cloud object-store log
   data.  Daily volumes are bursty — some days bring 2-3.5x the average —
   so a fixed-capacity index either over-provisions memory or fails on
   burst days.

   This example ingests a synthetic 14-day window into the MCAS-like
   store with an elastic index sized for ~1.35x the average day, evicting
   the oldest day as each new one arrives.  On burst days the index
   shrinks itself instead of blowing the budget; afterwards it expands
   back.

   Run with: dune exec examples/log_pipeline.exe *)

module Iotta = Ei_workload.Iotta
module Datagen = Ei_workload.Datagen
module Registry = Ei_harness.Registry
module Elasticity = Ei_core.Elasticity

let rows_per_avg_day = 15_000
let window_days = 14

let () =
  let volumes = Datagen.daily_volumes ~seed:33 ~days:40 () in
  (* Budget: window * average day * 1.5 overhead, in index bytes
     (approximately 56 B/key for a 16-byte-key STX B+-tree). *)
  let budget =
    int_of_float
      (float_of_int (window_days * rows_per_avg_day) *. 1.35 *. 56.0)
  in
  Printf.printf
    "sliding window: %d days, ~%d rows/day, index budget %.1f MiB\n\n"
    window_days rows_per_avg_day
    (float_of_int budget /. 1024.0 /. 1024.0);
  (* Log keys are timestamp-ordered (append-only), so the elastic config
     enables the access-aware cold sweep: overflow piggybacking alone
     cannot compact leaves that stop receiving inserts. *)
  let config =
    {
      (Elasticity.default_config ~size_bound:budget) with
      Elasticity.cold_sweep_period = 16;
      cold_sweep_batch = 16;
    }
  in
  let table =
    Ei_mcas.Log_table.create ~index_kind:(Registry.Elastic config) ()
  in
  let store = Ei_mcas.Store.create () in
  Ei_mcas.Store.attach_ado store ~partition:0 (Ei_mcas.Log_table.ado table);
  (* Day queues for eviction: each day's keys. *)
  let window = Queue.create () in
  let trace_seed = ref 0 in
  Printf.printf "%5s %8s %9s %11s %10s %s\n" "day" "volume" "rows-in"
    "index-MiB" "state" "";
  Array.iteri
    (fun day vol ->
      if day < 30 then begin
        let rows_today =
          max 1 (int_of_float (float_of_int rows_per_avg_day *. vol))
        in
        incr trace_seed;
        let rows = Iotta.generate ~seed:!trace_seed ~rows:rows_today ~objects:2_000 () in
        (* Timestamps must be globally unique across days: offset them. *)
        let offset = (day + 1) * 100_000_000 in
        let rows =
          Array.map (fun r -> { r with Iotta.ts = r.Iotta.ts + offset }) rows
        in
        Array.iter
          (fun r ->
            ignore (Ei_mcas.Store.invoke store ~partition:0 (Ei_mcas.Ado.Ingest r)))
          rows;
        Queue.add rows window;
        (* Evict the day that fell out of the window. *)
        if Queue.length window > window_days then begin
          let old = Queue.pop window in
          Array.iter
            (fun r ->
              ignore
                ((Ei_mcas.Log_table.index table).Ei_harness.Index_ops.remove
                   (Iotta.key_of_row r)))
            old
        end;
        (* Daily monitoring query (included-column, §2): distinct
           objects among the first 2000 entries of the day. *)
        let distinct =
          match
            Ei_mcas.Store.invoke store ~partition:0
              (Ei_mcas.Ado.Distinct_objects (Iotta.key_of_row rows.(0), 2000))
          with
          | Ei_mcas.Ado.Distinct d -> d
          | _ -> -1
        in
        ignore distinct;
        let mem = Ei_mcas.Store.ado_memory_bytes store ~partition:0 in
        Printf.printf "%5d %7.2fx %9d %11.2f %10s %s\n" day vol rows_today
          (float_of_int mem /. 1024.0 /. 1024.0)
          (Ei_mcas.Log_table.index_info table)
          (if mem > budget then "  <-- over budget!" else
           if vol >= 2.0 then "  <-- burst day absorbed" else "")
      end)
    volumes;
  Printf.printf
    "\nA plain B+-tree index for the largest window would have needed ~%.1f MiB.\n"
    (float_of_int (window_days * rows_per_avg_day) *. 2.0 *. 56.0 /. 1024.0 /. 1024.0)
