(* Tour of the elastic index framework: the SAME transformation — a soft
   size bound, compact SeqTree nodes with indirect key storage, and a
   shrink/expand state machine — applied to three different base
   structures:

     1. the B+-tree (the paper's §4),
     2. a skip list (§3's generality claim),
     3. a concurrent OLC B+-tree (the elastic BTreeOLC §6.2 leaves as
        future work), exercised from multiple domains.

   Each index gets the same data and the same bound (one third of what
   the plain structure would need) and reports how it adapted.

   Run with: dune exec examples/framework_tour.exe *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Clock = Ei_util.Bench_clock

let n = 50_000
let key_len = 16

let () =
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let rng = Rng.create 2024 in
  let seen = Hashtbl.create 1024 in
  let keys =
    Array.init n (fun _ ->
        let rec fresh () =
          let k = Key.random rng key_len in
          if Hashtbl.mem seen k then fresh ()
          else begin
            Hashtbl.add seen k ();
            k
          end
        in
        fresh ())
  in
  let tids = Array.map (Table.append table) keys in
  (* What would the plain structures need? *)
  let plain_btree =
    Ei_btree.Btree.create ~key_len ~load ~policy:Ei_btree.Policy.stx ()
  in
  Array.iteri (fun i k -> ignore (Ei_btree.Btree.insert plain_btree k tids.(i))) keys;
  let btree_bytes = Ei_btree.Btree.memory_bytes plain_btree in
  let bound = btree_bytes / 3 in
  Printf.printf
    "%d keys of %d bytes; plain B+-tree needs %.2f MiB; every elastic\n\
     variant gets a soft bound of %.2f MiB (a third)\n\n"
    n key_len (Clock.mib btree_bytes) (Clock.mib bound);

  (* 1. Elastic B+-tree. *)
  let eb =
    Ei_core.Elastic_btree.create ~key_len ~load
      (Ei_core.Elasticity.default_config ~size_bound:bound)
      ()
  in
  Array.iteri (fun i k -> ignore (Ei_core.Elastic_btree.insert eb k tids.(i))) keys;
  Printf.printf "elastic B+-tree:   %.2f MiB, %s, %d compact leaves\n"
    (Clock.mib (Ei_core.Elastic_btree.memory_bytes eb))
    (Ei_core.Elasticity.state_name (Ei_core.Elastic_btree.state eb))
    (Ei_core.Elastic_btree.compact_leaves eb);

  (* 2. Elastic skip list: same bound, same compact representation. *)
  let esl =
    Ei_core.Elastic_skiplist.create ~key_len ~load
      (Ei_core.Elastic_skiplist.default_config ~size_bound:bound)
      ()
  in
  Array.iteri (fun i k -> ignore (Ei_core.Elastic_skiplist.insert esl k tids.(i))) keys;
  Printf.printf "elastic skiplist:  %.2f MiB, %s, %d compact segments\n"
    (Clock.mib (Ei_core.Elastic_skiplist.memory_bytes esl))
    (Ei_core.Elastic_skiplist.state_name (Ei_core.Elastic_skiplist.state esl))
    (Ei_core.Elastic_skiplist.segments esl);

  (* 3. Elastic BTreeOLC: four domains inserting concurrently. *)
  let module Olc = Ei_olc.Btree_olc in
  let olc =
    Olc.create
      ~kind:(Olc.Olc_elastic (Olc.default_elastic_config ~size_bound:bound))
      ~key_len
      ~load:
        (Olc.safe_loader ~key_len
           ~table_length:(fun () -> Table.length table)
           ~load)
      ()
  in
  let domains = 4 in
  let shuffled = Array.init n (fun i -> i) in
  Rng.shuffle (Rng.create 7) shuffled;
  let worker d () =
    let per = n / domains in
    for j = d * per to ((d + 1) * per) - 1 do
      let i = shuffled.(j) in
      ignore (Olc.insert olc keys.(i) tids.(i))
    done
  in
  List.iter Domain.join (List.init domains (fun d -> Domain.spawn (worker d)));
  Printf.printf "elastic BTreeOLC:  %.2f MiB, %s, %d compact leaves (4 domains)\n"
    (Clock.mib (Olc.elastic_memory_bytes olc))
    (Olc.elastic_state_name olc)
    (Olc.elastic_compact_leaves olc);

  (* All three still answer queries correctly. *)
  let check name find =
    let rng = Rng.create 99 in
    for _ = 1 to 5_000 do
      let i = Rng.int rng n in
      match find keys.(i) with
      | Some tid when tid = tids.(i) -> ()
      | _ -> failwith (name ^ ": lost a key under pressure")
    done
  in
  check "btree" (Ei_core.Elastic_btree.find eb);
  check "skiplist" (Ei_core.Elastic_skiplist.find esl);
  check "olc" (Olc.find olc);
  Printf.printf "\nall three verified: every key answered correctly under pressure\n"
