(* Side-by-side comparison of STX, the elastic B+-tree and SeqTree128
   under a data-size spike: a baseline dataset is loaded, then a burst
   doubles it, then the burst data is deleted.

   The elastic index matches STX before the burst, absorbs the burst
   within its memory bound (where STX blows through it), and returns to
   STX-level query speed afterwards.

   Run with: dune exec examples/memory_pressure.exe *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Clock = Ei_util.Bench_clock

let baseline = 60_000
let burst = 60_000

let () =
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let rng = Rng.create 77 in
  let seen = Hashtbl.create 1024 in
  let fresh_key () =
    let rec go () =
      let k = Key.random rng 8 in
      if Hashtbl.mem seen k then go () else (Hashtbl.add seen k (); k)
    in
    go ()
  in
  let base_keys = Array.init baseline (fun _ -> fresh_key ()) in
  let burst_keys = Array.init burst (fun _ -> fresh_key ()) in
  let base_tids = Array.map (Table.append table) base_keys in
  let burst_tids = Array.map (Table.append table) burst_keys in
  (* Budget: 120% of what STX needs for the baseline. *)
  let stx_probe = Registry.make ~key_len:8 ~load Registry.Stx in
  Array.iteri (fun i k -> ignore (stx_probe.Index_ops.insert k base_tids.(i))) base_keys;
  let budget = stx_probe.Index_ops.memory_bytes () * 12 / 10 in
  Printf.printf "baseline %d keys, burst +%d keys, memory budget %.2f MiB\n\n"
    baseline burst (Clock.mib budget);
  let indexes =
    [
      Registry.make ~key_len:8 ~load Registry.Stx;
      Registry.make ~key_len:8 ~load
        (Registry.Elastic (Ei_core.Elasticity.default_config ~size_bound:budget));
      Registry.make ~key_len:8 ~load (Registry.Seqtree 128);
    ]
  in
  let lookup_mops index =
    let probes = 20_000 in
    let (), dt =
      Clock.time (fun () ->
          for i = 0 to probes - 1 do
            ignore (index.Index_ops.find base_keys.(i * 3 mod baseline))
          done)
    in
    Clock.mops probes dt
  in
  let report phase =
    Printf.printf "%-22s" phase;
    List.iter
      (fun index ->
        Printf.printf "  %s=%.2fMiB/%.2fMops%s" index.Index_ops.name
          (Clock.mib (index.Index_ops.memory_bytes ()))
          (lookup_mops index)
          (if index.Index_ops.memory_bytes () > budget then "(OVER)" else ""))
      indexes;
    print_newline ()
  in
  let insert_all keys tids =
    List.iter
      (fun index ->
        Array.iteri (fun i k -> ignore (index.Index_ops.insert k tids.(i))) keys)
      indexes
  in
  insert_all base_keys base_tids;
  report "after baseline:";
  insert_all burst_keys burst_tids;
  report "after burst:";
  List.iter
    (fun index ->
      Array.iter (fun k -> ignore (index.Index_ops.remove k)) burst_keys)
    indexes;
  (* Lookups drive the elastic index's expansion. *)
  List.iter (fun index -> ignore (lookup_mops index)) indexes;
  List.iter (fun index -> ignore (lookup_mops index)) indexes;
  report "after burst deleted:";
  Printf.printf
    "\nelastic stays within budget through the burst and recovers its speed;\n\
     STX exceeds the budget; seqtree128 is always compact but always slower.\n"
